// Resilience layer: retry policy schedules, deadline behaviour under a
// FakeClock (zero wall-clock waits), session redial, and the privacy
// invariant that retried private GETs carry fresh DPF key shares.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "net/faulty.h"
#include "net/retry.h"
#include "net/transport.h"
#include "oram/enclave.h"
#include "util/clock.h"
#include "zltp/client.h"
#include "zltp/messages.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::seconds;

// ------------------------------------------------------- policy mechanics

TEST(RetryPolicyTest, RetryableCodes) {
  EXPECT_TRUE(net::IsRetryable(UnavailableError("x")));
  EXPECT_TRUE(net::IsRetryable(DeadlineExceededError("x")));
  EXPECT_FALSE(net::IsRetryable(Status::Ok()));
  EXPECT_FALSE(net::IsRetryable(NotFoundError("x")));
  EXPECT_FALSE(net::IsRetryable(ProtocolError("x")));
  EXPECT_FALSE(net::IsRetryable(FailedPreconditionError("x")));
}

TEST(RetryPolicyTest, BackoffScheduleWithoutJitterIsExact) {
  net::RetryPolicy policy;
  policy.initial_backoff = milliseconds(10);
  policy.multiplier = 2.0;
  policy.max_backoff = milliseconds(25);
  policy.jitter = 0.0;
  net::Backoff backoff(policy, /*jitter_seed=*/42);
  EXPECT_EQ(backoff.NextDelay(), nanoseconds(milliseconds(10)));
  EXPECT_EQ(backoff.NextDelay(), nanoseconds(milliseconds(20)));
  EXPECT_EQ(backoff.NextDelay(), nanoseconds(milliseconds(25)));  // capped
  EXPECT_EQ(backoff.NextDelay(), nanoseconds(milliseconds(25)));  // stays
}

TEST(RetryPolicyTest, JitterStaysWithinBand) {
  net::RetryPolicy policy;
  policy.initial_backoff = milliseconds(100);
  policy.multiplier = 1.0;
  policy.max_backoff = milliseconds(100);
  policy.jitter = 0.5;
  net::Backoff backoff(policy, /*jitter_seed=*/7);
  for (int i = 0; i < 64; ++i) {
    const nanoseconds d = backoff.NextDelay();
    EXPECT_GE(d, nanoseconds(milliseconds(50)));
    EXPECT_LE(d, nanoseconds(milliseconds(150)));
  }
}

TEST(RetryPolicyTest, BackoffSleepsOnInjectedClock) {
  FakeClock fake;
  net::RetryPolicy policy;
  policy.initial_backoff = seconds(30);  // would be unbearable for real
  policy.max_backoff = seconds(30);
  policy.jitter = 0.0;
  policy.clock = &fake;
  net::Backoff backoff(policy, 1);
  backoff.SleepBeforeRetry();
  EXPECT_EQ(fake.Now(), nanoseconds(seconds(30)));
  EXPECT_EQ(fake.sleep_calls(), 1u);
}

// --------------------------------------------------------- PIR fixtures

zltp::PirStoreConfig StoreConfig() {
  zltp::PirStoreConfig c;
  c.domain_bits = 12;
  c.record_size = 128;
  c.keyword_seed = Bytes(16, 0x5a);
  return c;
}

// Two live PIR servers plus factories that dial fresh in-memory
// connections to them — the shape a real deployment's redial has.
struct TwoServers {
  TwoServers() : store(StoreConfig()), server0(store, 0), server1(store, 1) {}

  net::TransportFactory Dial(int role) {
    zltp::ZltpPirServer& s = role == 0 ? server0 : server1;
    return [&s]() -> Result<std::unique_ptr<net::Transport>> {
      net::TransportPair p = net::CreateInMemoryPair();
      s.ServeConnectionDetached(std::move(p.b));
      return std::move(p.a);
    };
  }

  zltp::PirStore store;
  zltp::ZltpPirServer server0;
  zltp::ZltpPirServer server1;
};

// ------------------------------------------------------- establish retry

TEST(SessionRetryTest, EstablishRetriesFailedDial) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("k", ToBytes("v")).ok());

  FakeClock fake;
  auto dials = std::make_shared<std::atomic<int>>(0);
  net::TransportFactory real_dial0 = servers.Dial(0);

  zltp::EstablishOptions options;
  // First dial attempt is refused; the second goes through.
  options.factory0 =
      [dials, real_dial0]() -> Result<std::unique_ptr<net::Transport>> {
    if (dials->fetch_add(1) == 0) return UnavailableError("dial refused");
    return real_dial0();
  };
  options.factory1 = servers.Dial(1);
  options.retry.max_attempts = 3;
  options.retry.jitter = 0.0;
  options.clock = &fake;

  auto session = zltp::PirSession::Establish(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(dials->load(), 2);
  EXPECT_GE(fake.sleep_calls(), 1u) << "backoff must pace establish retries";
  EXPECT_TRUE(session->PrivateGet("k").ok());
  session->Close();
}

TEST(SessionRetryTest, EstablishExhaustsAttempts) {
  FakeClock fake;
  zltp::EstablishOptions options;
  options.factory0 = []() -> Result<std::unique_ptr<net::Transport>> {
    return UnavailableError("dial refused");
  };
  // Slot 1 never even dials once slot 0 keeps failing.
  options.factory1 = []() -> Result<std::unique_ptr<net::Transport>> {
    return UnavailableError("dial refused");
  };
  options.retry.max_attempts = 3;
  options.retry.jitter = 0.0;
  options.clock = &fake;

  auto session = zltp::PirSession::Establish(std::move(options));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fake.sleep_calls(), 2u) << "two backoffs between three attempts";
}

// --------------------------------------------- redial + fresh randomness

TEST(SessionRetryTest, GetRetriesAfterCrashWithFreshDpfShares) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("page", ToBytes("content")).ok());

  FakeClock fake;
  net::FrameLog log0;  // every frame the client puts on the role-0 wire
  auto dials0 = std::make_shared<std::atomic<int>>(0);
  net::TransportFactory real_dial0 = servers.Dial(0);

  zltp::EstablishOptions options;
  options.factory0 =
      [&log0, dials0, real_dial0]() -> Result<std::unique_ptr<net::Transport>> {
    LW_ASSIGN_OR_RETURN(std::unique_ptr<net::Transport> inner, real_dial0());
    std::unique_ptr<net::Transport> t =
        std::make_unique<net::RecordingTransport>(std::move(inner), &log0);
    if (dials0->fetch_add(1) == 0) {
      // First connection survives the hello (2 ops) and the GET send
      // (3rd op), then crashes before the answer arrives.
      t = std::make_unique<net::DyingTransport>(std::move(t), 3);
    }
    return t;
  };
  options.factory1 = servers.Dial(1);
  options.retry.max_attempts = 3;
  options.retry.jitter = 0.0;
  options.clock = &fake;

  auto session = zltp::PirSession::Establish(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto value = session->PrivateGet("page");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(ToString(*value), "content");
  EXPECT_EQ(session->traffic().retries, 1u);
  EXPECT_EQ(session->traffic().redials, 1u);
  EXPECT_EQ(session->traffic().requests, 1u) << "one completed private GET";

  // The wire saw the query twice (once per attempt). The two sightings
  // must be unlinkable: fresh DPF key shares, not a resend of the same
  // bytes (docs/ROBUSTNESS.md).
  std::vector<Bytes> queries;
  for (const net::Frame& f : log0.Snapshot()) {
    if (f.type != static_cast<std::uint8_t>(zltp::MsgType::kGetRequest)) {
      continue;
    }
    auto request = zltp::DecodeGetRequest(f);
    ASSERT_TRUE(request.ok());
    queries.push_back(request->body);
  }
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_FALSE(queries[0].empty());
  EXPECT_NE(queries[0], queries[1])
      << "retried GET resent identical DPF share bytes — linkable on the wire";

  session->Close();
}

TEST(SessionRetryTest, NoFactoryMeansNoRedial) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("k", ToBytes("v")).ok());
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  servers.server0.ServeConnectionDetached(std::move(p0.b));
  servers.server1.ServeConnectionDetached(std::move(p1.b));

  FakeClock fake;
  zltp::EstablishOptions options;
  // Dies right after the hello; with no factory the retry loop cannot
  // redial, so the failure surfaces (after dropping the dead pair).
  options.transport0 =
      std::make_unique<net::DyingTransport>(std::move(p0.a), 2);
  options.transport1 = std::move(p1.a);
  options.retry.max_attempts = 5;
  options.retry.jitter = 0.0;
  options.clock = &fake;

  auto session = zltp::PirSession::Establish(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto value = session->PrivateGet("k");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(session->traffic().retries, 0u);
}

TEST(SessionRetryTest, RedialReverifiesServerRoles) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("k", ToBytes("v")).ok());

  FakeClock fake;
  auto dials0 = std::make_shared<std::atomic<int>>(0);
  net::TransportFactory dial_role0 = servers.Dial(0);
  net::TransportFactory dial_role1 = servers.Dial(1);

  zltp::EstablishOptions options;
  // The role-0 factory initially reaches server 0 (dying after the hello
  // and the first GET send), but its redial lands on server 1 — a
  // misrouted dial that would put both connections in one trust domain.
  options.factory0 = [dials0, dial_role0,
                      dial_role1]() -> Result<std::unique_ptr<net::Transport>> {
    if (dials0->fetch_add(1) == 0) {
      LW_ASSIGN_OR_RETURN(std::unique_ptr<net::Transport> t, dial_role0());
      return std::unique_ptr<net::Transport>(
          std::make_unique<net::DyingTransport>(std::move(t), 3));
    }
    return dial_role1();
  };
  options.factory1 = dial_role1;
  options.retry.max_attempts = 3;
  options.retry.jitter = 0.0;
  options.clock = &fake;

  auto session = zltp::PirSession::Establish(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto value = session->PrivateGet("k");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kFailedPrecondition)
      << value.status().ToString();
}

// ------------------------------------------------- deadlines, fake clock

TEST(SessionRetryTest, SlowPeerHitsDeadlineWithoutRealSleeps) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("k", ToBytes("v")).ok());
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  servers.server0.ServeConnectionDetached(std::move(p0.b));
  servers.server1.ServeConnectionDetached(std::move(p1.b));

  FakeClock fake;
  zltp::EstablishOptions options;
  // The role-0 peer takes 200ms (of fake time) per answer: fine for the
  // 1s hello budget, fatal for the 100ms op budget.
  options.transport0 =
      std::make_unique<net::DelayTransport>(std::move(p0.a), milliseconds(200));
  options.transport1 = std::move(p1.a);
  options.hello_timeout = seconds(1);
  options.op_timeout = milliseconds(100);
  options.clock = &fake;

  auto session = zltp::PirSession::Establish(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto value = session->PrivateGet("k");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kDeadlineExceeded)
      << value.status().ToString();
  EXPECT_GE(fake.sleep_calls(), 1u)
      << "the stall must burn fake-clock budget, not wall-clock time";
}

TEST(SessionRetryTest, DeadlineExceededRecoveredByRedial) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("k", ToBytes("v")).ok());
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  servers.server0.ServeConnectionDetached(std::move(p0.b));
  servers.server1.ServeConnectionDetached(std::move(p1.b));

  FakeClock fake;
  zltp::EstablishOptions options;
  // Initial role-0 connection stalls past any op deadline; the redial
  // (via the factories) reaches a healthy server.
  options.transport0 =
      std::make_unique<net::DelayTransport>(std::move(p0.a), seconds(30));
  options.transport1 = std::move(p1.a);
  options.factory0 = servers.Dial(0);
  options.factory1 = servers.Dial(1);
  options.hello_timeout = std::chrono::minutes(5);
  options.op_timeout = milliseconds(100);
  options.retry.max_attempts = 2;
  options.retry.jitter = 0.0;
  options.clock = &fake;

  auto session = zltp::PirSession::Establish(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto value = session->PrivateGet("k");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(ToString(*value), "v");
  EXPECT_EQ(session->traffic().retries, 1u);
  EXPECT_EQ(session->traffic().redials, 1u);
  session->Close();
}

// ------------------------------------------------------ traffic mirrors

TEST(SessionRetryTest, TrafficSinkAggregatesAcrossSessions) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("k", ToBytes("v")).ok());

  zltp::TrafficCounters sink;
  for (int i = 0; i < 2; ++i) {
    zltp::EstablishOptions options;
    options.factory0 = servers.Dial(0);
    options.factory1 = servers.Dial(1);
    options.traffic_sink = &sink;
    auto session = zltp::PirSession::Establish(std::move(options));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE(session->PrivateGet("k").ok());
    session->Close();
  }
  EXPECT_EQ(sink.requests, 2u);
  EXPECT_GT(sink.bytes_sent, 0u);
  EXPECT_GT(sink.bytes_received, 0u);
}

// --------------------------------------------------------- deprecations

TEST(SessionRetryTest, DeprecatedPositionalEstablishStillWorks) {
  TwoServers servers;
  ASSERT_TRUE(servers.store.Publish("k", ToBytes("v")).ok());
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  servers.server0.ServeConnectionDetached(std::move(p0.b));
  servers.server1.ServeConnectionDetached(std::move(p1.b));

  auto session =
      zltp::PirSession::Establish(std::move(p0.a), std::move(p1.a));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto value = session->PrivateGet("k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(ToString(*value), "v");
  session->Close();
}

// ------------------------------------------------------------- enclave

TEST(SessionRetryTest, EnclaveSessionRedialsAndReseals) {
  oram::EnclaveConfig config;
  config.capacity = 64;
  config.value_size = 128;
  oram::MemoryStorage storage(oram::KvEnclave::RequiredStorageBuckets(config));
  oram::KvEnclave enclave(config, storage);
  ASSERT_TRUE(enclave.Put("wiki/Uganda", ToBytes("landlocked")).ok());
  zltp::ZltpEnclaveServer server(enclave);

  FakeClock fake;
  auto dials = std::make_shared<std::atomic<int>>(0);
  net::TransportFactory dial =
      [&server]() -> Result<std::unique_ptr<net::Transport>> {
    net::TransportPair p = net::CreateInMemoryPair();
    server.ServeConnectionDetached(std::move(p.b));
    return std::move(p.a);
  };

  zltp::EstablishOptions options;
  options.factory0 =
      [dials, dial]() -> Result<std::unique_ptr<net::Transport>> {
    LW_ASSIGN_OR_RETURN(std::unique_ptr<net::Transport> t, dial());
    if (dials->fetch_add(1) == 0) {
      // Survives the hello and the GET send, dies before the answer.
      return std::unique_ptr<net::Transport>(
          std::make_unique<net::DyingTransport>(std::move(t), 3));
    }
    return t;
  };
  options.retry.max_attempts = 3;
  options.retry.jitter = 0.0;
  options.clock = &fake;

  auto session = zltp::EnclaveSession::Establish(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto value = session->PrivateGet("wiki/Uganda");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(ToString(*value), "landlocked");
  EXPECT_EQ(session->traffic().retries, 1u);
  EXPECT_EQ(session->traffic().redials, 1u);
  session->Close();
}

TEST(SessionRetryTest, EnclaveRejectsSecondServerSlot) {
  net::TransportPair p = net::CreateInMemoryPair();
  net::TransportPair q = net::CreateInMemoryPair();
  zltp::EstablishOptions options;
  options.transport0 = std::move(p.a);
  options.transport1 = std::move(q.a);
  auto session = zltp::EnclaveSession::Establish(std::move(options));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lw
