// Property-based tests over the decoder surfaces (fuzz/proptest.h):
// encode→decode→re-encode roundtrips, decode-never-crashes over random
// bytes, and the minimizing reporter itself. The properties mirror the
// LW_CHECK invariants inside fuzz/targets.cc, so anything a fuzzer would
// flag as a crash fails here as a returned (minimized) counterexample.

#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "dpf/dpf.h"
#include "fuzz/proptest.h"
#include "fuzz/targets.h"
#include "json/json.h"
#include "net/transport.h"
#include "util/check.h"
#include "util/hex.h"
#include "util/io.h"
#include "zltp/messages.h"

namespace lw {
namespace {

// Wraps a fuzz target as a boolean property: LW_CHECK failures inside the
// target (roundtrip invariant violations) become counterexamples instead of
// process aborts.
bool TargetHolds(fuzz::TargetFn target, const Bytes& input) {
  try {
    return target(input.data(), input.size()) == 0;
  } catch (const InvariantViolation&) {
    return false;
  }
}

Bytes RandomBytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.UniformInt(max_len + 1));
  rng.Fill(MutableByteSpan(out.data(), out.size()));
  return out;
}

// ---------------------------------------------------------------- decoders
// decode-never-crashes + accepted-implies-roundtrip, via the fuzz targets.

TEST(DecoderProperty, AllTargetsTotalOverRandomBytes) {
  for (const fuzz::Target& t : fuzz::AllTargets()) {
    proptest::Config cfg;
    cfg.iterations = 200;
    const auto cex = proptest::FindCounterexample(
        cfg, [](Rng& rng) { return RandomBytes(rng, 96); },
        [&](const Bytes& input) { return TargetHolds(t.fn, input); });
    EXPECT_FALSE(cex.has_value())
        << "target " << t.name << ": " << proptest::Describe(*cex);
  }
}

TEST(DecoderProperty, ZltpStructuredFramesRoundTrip) {
  proptest::Config cfg;
  const auto cex = proptest::FindCounterexample(
      cfg,
      [](Rng& rng) {
        // A structurally valid message of a random type, encoded, with the
        // FuzzZltp type-selector byte prepended (type = 1 + selector % 5).
        net::Frame f;
        switch (rng.UniformInt(5)) {
          case 0: {
            zltp::ClientHello m;
            m.version = static_cast<std::uint16_t>(rng.UniformInt(1 << 16));
            const int n = static_cast<int>(rng.UniformInt(4));
            for (int i = 0; i < n; ++i) {
              m.supported_modes.push_back(rng.UniformInt(2) == 0
                                              ? zltp::Mode::kTwoServerPir
                                              : zltp::Mode::kEnclave);
            }
            f = zltp::Encode(m);
            break;
          }
          case 1: {
            zltp::ServerHello m;
            m.version = static_cast<std::uint16_t>(rng.UniformInt(1 << 16));
            m.mode = rng.UniformInt(2) == 0 ? zltp::Mode::kTwoServerPir
                                            : zltp::Mode::kEnclave;
            m.server_role = static_cast<std::uint8_t>(rng.UniformInt(2));
            m.domain_bits = static_cast<std::uint8_t>(rng.UniformInt(41));
            m.record_size = static_cast<std::uint32_t>(rng.Next());
            if (rng.UniformInt(2) == 0) {
              m.keyword_seed.resize(dpf::kSeedSize);
              rng.Fill(MutableByteSpan(m.keyword_seed.data(),
                                       m.keyword_seed.size()));
            }
            if (rng.UniformInt(2) == 0) {
              m.enclave_public_key.resize(32);
              rng.Fill(MutableByteSpan(m.enclave_public_key.data(),
                                       m.enclave_public_key.size()));
            }
            f = zltp::Encode(m);
            break;
          }
          case 2: {
            zltp::GetRequest m;
            m.request_id = static_cast<std::uint32_t>(rng.Next());
            m.body.resize(rng.UniformInt(48));
            rng.Fill(MutableByteSpan(m.body.data(), m.body.size()));
            f = zltp::Encode(m);
            break;
          }
          case 3: {
            zltp::GetResponse m;
            m.request_id = static_cast<std::uint32_t>(rng.Next());
            m.body.resize(rng.UniformInt(48));
            rng.Fill(MutableByteSpan(m.body.data(), m.body.size()));
            f = zltp::Encode(m);
            break;
          }
          default: {
            zltp::ErrorMsg m;
            m.code = static_cast<StatusCode>(rng.UniformInt(
                static_cast<std::uint64_t>(StatusCode::kDeadlineExceeded) + 1));
            const std::size_t n = rng.UniformInt(24);
            for (std::size_t i = 0; i < n; ++i) {
              m.message.push_back(
                  static_cast<char>('a' + rng.UniformInt(26)));
            }
            f = zltp::Encode(m);
            break;
          }
        }
        Bytes input;
        input.push_back(static_cast<std::uint8_t>(f.type - 1));
        input.insert(input.end(), f.payload.begin(), f.payload.end());
        return input;
      },
      [](const Bytes& input) {
        if (input.empty()) return true;  // shrunk candidates may be empty
        if (!TargetHolds(fuzz::FuzzZltp, input)) return false;
        // A frame we encoded ourselves must also be *accepted*: prepending
        // the selector reproduces the frame, so decode must succeed.
        net::Frame f;
        f.type = static_cast<std::uint8_t>(1 + input[0] % 5);
        f.payload.assign(input.begin() + 1, input.end());
        switch (static_cast<zltp::MsgType>(f.type)) {
          case zltp::MsgType::kClientHello:
            return zltp::DecodeClientHello(f).ok();
          case zltp::MsgType::kServerHello:
            return zltp::DecodeServerHello(f).ok();
          case zltp::MsgType::kGetRequest:
            return zltp::DecodeGetRequest(f).ok();
          case zltp::MsgType::kGetResponse:
            return zltp::DecodeGetResponse(f).ok();
          default:
            return zltp::DecodeError(f).ok();
        }
      });
  EXPECT_FALSE(cex.has_value()) << proptest::Describe(*cex);
}

TEST(DecoderProperty, DpfKeySerializeDeserializeIdentity) {
  // Generate → Serialize → Deserialize must be the identity, and the
  // deserialized pair must still evaluate to the point function at alpha.
  Rng rng(0xD9F);
  for (int i = 0; i < 60; ++i) {
    const int domain_bits = 1 + static_cast<int>(rng.UniformInt(10));
    const std::uint64_t alpha =
        rng.UniformInt(std::uint64_t{1} << domain_bits);
    const dpf::KeyPair pair = dpf::Generate(alpha, domain_bits);
    for (const dpf::DpfKey& key : {pair.key0, pair.key1}) {
      const Bytes wire = key.Serialize();
      const auto back = dpf::DpfKey::Deserialize(wire);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_TRUE(*back == key);
      EXPECT_EQ(back->Serialize(), wire);
    }
    const auto key0 = dpf::DpfKey::Deserialize(pair.key0.Serialize());
    const auto key1 = dpf::DpfKey::Deserialize(pair.key1.Serialize());
    ASSERT_TRUE(key0.ok() && key1.ok());
    const dpf::BitVector b0 = dpf::EvalFull(*key0);
    const dpf::BitVector b1 = dpf::EvalFull(*key1);
    const std::uint64_t domain = std::uint64_t{1} << domain_bits;
    for (std::uint64_t x = 0; x < domain; ++x) {
      const std::uint8_t want = x == alpha ? 1 : 0;
      ASSERT_EQ(dpf::GetBit(b0, x) ^ dpf::GetBit(b1, x), want)
          << "alpha=" << alpha << " x=" << x << " d=" << domain_bits;
    }
  }
}

TEST(DecoderProperty, JsonCanonicalWriteIsParseFixpoint) {
  // Random value trees: write → parse → compare, then write again and
  // compare bytes (canonical form is a fixpoint).
  proptest::Config cfg;
  cfg.iterations = 150;
  Rng tree_rng(0xBEEF);
  for (int i = 0; i < cfg.iterations; ++i) {
    struct Gen {
      Rng& rng;
      json::Value Tree(int depth) {
        switch (rng.UniformInt(depth <= 0 ? 4 : 6)) {
          case 0: return json::Value(nullptr);
          case 1: return json::Value(rng.UniformInt(2) == 0);
          case 2: {
            // Mix integers and fractions, positive and negative.
            const double d = rng.UniformInt(2) == 0
                                 ? static_cast<double>(rng.UniformInt(1000)) -
                                       500
                                 : rng.UniformDouble() * 2e9 - 1e9;
            return json::Value(d);
          }
          case 3: {
            std::string s;
            const std::size_t n = rng.UniformInt(12);
            for (std::size_t j = 0; j < n; ++j) {
              // Include controls, quotes, NULs, and non-ASCII bytes.
              s.push_back(static_cast<char>(rng.UniformInt(256)));
            }
            return json::Value(std::move(s));
          }
          case 4: {
            json::Array a;
            const std::size_t n = rng.UniformInt(4);
            for (std::size_t j = 0; j < n; ++j) a.push_back(Tree(depth - 1));
            return json::Value(std::move(a));
          }
          default: {
            json::Object o;
            const std::size_t n = rng.UniformInt(4);
            for (std::size_t j = 0; j < n; ++j) {
              o["k" + std::to_string(rng.UniformInt(16))] = Tree(depth - 1);
            }
            return json::Value(std::move(o));
          }
        }
      }
    };
    const json::Value v = Gen{tree_rng}.Tree(3);
    const std::string once = json::Write(v);
    const auto parsed = json::Parse(once);
    ASSERT_TRUE(parsed.ok()) << once << ": " << parsed.status().ToString();
    EXPECT_TRUE(*parsed == v) << once;
    EXPECT_EQ(json::Write(*parsed), once);
  }
}

TEST(DecoderProperty, HexEncodeDecodeIdentity) {
  proptest::Config cfg;
  const auto cex = proptest::FindCounterexample(
      cfg, [](Rng& rng) { return RandomBytes(rng, 64); },
      [](const Bytes& input) {
        const auto decoded = HexDecode(HexEncode(input));
        return decoded.ok() && *decoded == input;
      });
  EXPECT_FALSE(cex.has_value()) << proptest::Describe(*cex);
}

TEST(DecoderProperty, WriterReaderFieldScriptRoundTrip) {
  // Write a random field sequence, read it back with the same script.
  proptest::Config cfg;
  cfg.iterations = 200;
  Rng rng(0xD1CE);
  for (int i = 0; i < cfg.iterations; ++i) {
    const std::size_t n_fields = rng.UniformInt(8);
    std::vector<std::uint8_t> script;
    Writer w;
    std::vector<std::uint64_t> ints;
    std::vector<Bytes> blobs;
    for (std::size_t j = 0; j < n_fields; ++j) {
      const std::uint8_t op = static_cast<std::uint8_t>(rng.UniformInt(5));
      script.push_back(op);
      switch (op) {
        case 0: {
          const auto v = static_cast<std::uint8_t>(rng.Next());
          w.U8(v);
          ints.push_back(v);
          break;
        }
        case 1: {
          const auto v = static_cast<std::uint16_t>(rng.Next());
          w.U16(v);
          ints.push_back(v);
          break;
        }
        case 2: {
          const auto v = static_cast<std::uint32_t>(rng.Next());
          w.U32(v);
          ints.push_back(v);
          break;
        }
        case 3: {
          const std::uint64_t v = rng.Next();
          w.U64(v);
          ints.push_back(v);
          break;
        }
        default: {
          Bytes b = RandomBytes(rng, 24);
          w.LengthPrefixed(b);
          blobs.push_back(std::move(b));
          break;
        }
      }
    }
    Reader r(w.bytes());
    std::size_t int_at = 0, blob_at = 0;
    for (const std::uint8_t op : script) {
      switch (op) {
        case 0: {
          const auto v = r.U8();
          ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, ints[int_at++]);
          break;
        }
        case 1: {
          const auto v = r.U16();
          ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, ints[int_at++]);
          break;
        }
        case 2: {
          const auto v = r.U32();
          ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, ints[int_at++]);
          break;
        }
        case 3: {
          const auto v = r.U64();
          ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, ints[int_at++]);
          break;
        }
        default: {
          const auto v = r.LengthPrefixed();
          ASSERT_TRUE(v.ok());
          EXPECT_EQ(*v, blobs[blob_at++]);
          break;
        }
      }
    }
    EXPECT_TRUE(r.ExpectEnd().ok());
  }
}

// --------------------------------------------------------------- minimizer

TEST(Proptest, MinimizerShrinksToOneByte) {
  // Property: "input contains no 0x7f byte". The generator plants 0x7f
  // inside noise; the minimizer must strip the noise down to {0x7f}.
  proptest::Config cfg;
  cfg.iterations = 50;
  const auto cex = proptest::FindCounterexample(
      cfg,
      [](Rng& rng) {
        Bytes b = RandomBytes(rng, 40);
        for (std::uint8_t& x : b) {
          if (x == 0x7f) x = 0;  // plant exactly one, deterministically
        }
        if (rng.UniformInt(2) == 0 && !b.empty()) {
          b[b.size() / 2] = 0x7f;
        }
        return b;
      },
      [](const Bytes& input) {
        for (const std::uint8_t x : input) {
          if (x == 0x7f) return false;
        }
        return true;
      });
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(*cex, Bytes{0x7f}) << proptest::Describe(*cex);
}

TEST(Proptest, PassingPropertyReturnsNoCounterexample) {
  proptest::Config cfg;
  cfg.iterations = 20;
  const auto cex = proptest::FindCounterexample(
      cfg, [](Rng& rng) { return RandomBytes(rng, 16); },
      [](const Bytes&) { return true; });
  EXPECT_FALSE(cex.has_value());
}

}  // namespace
}  // namespace lw
