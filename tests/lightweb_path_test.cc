// Path parsing and domain validation tests.
#include <gtest/gtest.h>

#include "lightweb/path.h"

namespace lw::lightweb {
namespace {

TEST(Domain, ValidDomains) {
  for (const char* d : {"nytimes.com", "a.b", "weather.example.org",
                        "poodleclubofamerica.org", "x1-2.y3", "123.com"}) {
    EXPECT_TRUE(IsValidDomain(d)) << d;
  }
}

TEST(Domain, InvalidDomains) {
  for (const char* d :
       {"", "nodots", "UPPER.com", ".leading", "trailing.", "sp ace.com",
        "under_score.com", "-lead.com", "trail-.com", "a..b", "dom/ain.com"}) {
    EXPECT_FALSE(IsValidDomain(d)) << d;
  }
}

TEST(Domain, RejectsOverlongLabelsAndNames) {
  const std::string long_label(64, 'a');
  EXPECT_FALSE(IsValidDomain(long_label + ".com"));
  const std::string ok_label(63, 'a');
  EXPECT_TRUE(IsValidDomain(ok_label + ".com"));
  std::string huge;
  for (int i = 0; i < 100; ++i) huge += "abc.";
  huge += "com";
  EXPECT_FALSE(IsValidDomain(huge));
}

TEST(Path, ParseFullPath) {
  auto p = ParsePath("nytimes.com/world/africa/2023/06/headlines.json");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->domain, "nytimes.com");
  EXPECT_EQ(p->rest, "/world/africa/2023/06/headlines.json");
}

TEST(Path, ParseDomainOnly) {
  auto p = ParsePath("weather.com");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->domain, "weather.com");
  EXPECT_EQ(p->rest, "/");
}

TEST(Path, ToleratesLeadingSlash) {
  auto p = ParsePath("/cnn.com/politics");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->domain, "cnn.com");
  EXPECT_EQ(p->rest, "/politics");
}

TEST(Path, RejectsInvalidDomain) {
  EXPECT_FALSE(ParsePath("not_a_domain/x").ok());
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("/").ok());
}

TEST(Path, SplitSegments) {
  auto s = SplitSegments("/a/b/c");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitSegments("/").value().empty());
  EXPECT_TRUE(SplitSegments("").value().empty());
  // Trailing slash tolerated.
  EXPECT_EQ(SplitSegments("/a/b/").value(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Path, SplitRejectsBadSegments) {
  EXPECT_FALSE(SplitSegments("/a//b").ok());
  EXPECT_FALSE(SplitSegments("/a/../b").ok());
  EXPECT_FALSE(SplitSegments("/./a").ok());
}

TEST(Path, JoinPath) {
  EXPECT_EQ(JoinPath("a.com", "/x/y"), "a.com/x/y");
  EXPECT_EQ(JoinPath("a.com", "x/y"), "a.com/x/y");
  EXPECT_EQ(JoinPath("a.com", ""), "a.com/");
  // Round trip with parse.
  auto p = ParsePath("a.com/x");
  EXPECT_EQ(JoinPath(p->domain, p->rest), "a.com/x");
}

}  // namespace
}  // namespace lw::lightweb
