// Transport tests: in-memory pair semantics, framed TCP transport, and
// adversarial framing inputs.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <thread>

#include "net/tcp.h"
#include "net/transport.h"
#include "util/rand.h"

namespace lw::net {
namespace {

Frame MakeFrame(std::uint8_t type, std::string_view payload) {
  Frame f;
  f.type = type;
  f.payload = ToBytes(payload);
  return f;
}

// ------------------------------------------------------------- in-memory

TEST(InMemory, RoundTripBothDirections) {
  TransportPair pair = CreateInMemoryPair();
  ASSERT_TRUE(pair.a->Send(MakeFrame(1, "ping")).ok());
  auto got = pair.b->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakeFrame(1, "ping"));

  ASSERT_TRUE(pair.b->Send(MakeFrame(2, "pong")).ok());
  EXPECT_EQ(pair.a->Receive().value(), MakeFrame(2, "pong"));
}

TEST(InMemory, PreservesOrder) {
  TransportPair pair = CreateInMemoryPair();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        pair.a->Send(MakeFrame(3, "msg-" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ToString(pair.b->Receive().value().payload),
              "msg-" + std::to_string(i));
  }
}

TEST(InMemory, CloseUnblocksReceiver) {
  TransportPair pair = CreateInMemoryPair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.a->Close();
  });
  auto got = pair.b->Receive();
  closer.join();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(InMemory, SendAfterCloseFails) {
  TransportPair pair = CreateInMemoryPair();
  pair.b->Close();
  EXPECT_EQ(pair.a->Send(MakeFrame(1, "x")).code(),
            StatusCode::kUnavailable);
}

TEST(InMemory, QueuedFramesDrainedBeforeCloseReported) {
  // Frames accepted before Close() are still delivered (like TCP data
  // buffered before FIN); only then does the receiver observe UNAVAILABLE.
  TransportPair pair = CreateInMemoryPair();
  ASSERT_TRUE(pair.a->Send(MakeFrame(1, "last words")).ok());
  pair.a->Close();
  auto got = pair.b->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(got->payload), "last words");
  EXPECT_FALSE(pair.b->Receive().ok());
}

TEST(InMemory, CrossThreadTraffic) {
  TransportPair pair = CreateInMemoryPair();
  constexpr int kMessages = 500;
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(pair.a->Send(MakeFrame(7, std::to_string(i))).ok());
    }
  });
  int received = 0;
  for (int i = 0; i < kMessages; ++i) {
    auto got = pair.b->Receive();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(got->payload), std::to_string(i));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kMessages);
}

TEST(InMemory, EmptyPayloadFrame) {
  TransportPair pair = CreateInMemoryPair();
  ASSERT_TRUE(pair.a->Send(MakeFrame(9, "")).ok());
  auto got = pair.b->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->type, 9);
  EXPECT_TRUE(got->payload.empty());
}

// ------------------------------------------------------------------ TCP

TEST(Tcp, ConnectAndRoundTrip) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const std::uint16_t port = listener->bound_port();
  ASSERT_NE(port, 0);

  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = (*conn)->Receive();
    ASSERT_TRUE(frame.ok());
    frame->payload.push_back('!');
    ASSERT_TRUE((*conn)->Send(*frame).ok());
  });

  auto client = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Send(MakeFrame(5, "hello")).ok());
  auto reply = (*client)->Receive();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ToString(reply->payload), "hello!");
  server.join();
}

TEST(Tcp, LargeFrame) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  Bytes big = SecureRandom(1 << 20);  // 1 MiB, like a lightweb code blob

  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto frame = (*conn)->Receive();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE((*conn)->Send(*frame).ok());
  });

  auto client = TcpConnect("127.0.0.1", listener->bound_port());
  ASSERT_TRUE(client.ok());
  Frame f;
  f.type = 1;
  f.payload = big;
  ASSERT_TRUE((*client)->Send(f).ok());
  auto echo = (*client)->Receive();
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo->payload, big);
  server.join();
}

TEST(Tcp, PeerCloseReportsUnavailable) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    (*conn)->Close();
  });
  auto client = TcpConnect("127.0.0.1", listener->bound_port());
  ASSERT_TRUE(client.ok());
  auto got = (*client)->Receive();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  server.join();
}

TEST(Tcp, RejectsOversizedFrameLength) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread attacker([&, port = listener->bound_port()] {
    auto conn = TcpConnect("127.0.0.1", port);
    ASSERT_TRUE(conn.ok());
    // Hand-craft an absurd length prefix via a legitimate send of garbage:
    // we cheat by sending a frame whose payload IS a bogus header for the
    // next read — instead, just send 4 raw bytes through a socket.
    // Simpler: a frame with length 0xffffffff cannot be built via Send, so
    // open a raw socket.
    (*conn)->Close();
  });
  auto victim = listener->Accept();
  ASSERT_TRUE(victim.ok());
  attacker.join();
  // Raw-socket variant: length prefix of 0xffffffff.
  std::thread attacker2([&, port = listener->bound_port()] {
    auto conn = TcpConnect("127.0.0.1", port);
    ASSERT_TRUE(conn.ok());
    Frame f;
    f.type = 1;
    // The largest legal frame body is kMaxFrameSize; craft one beyond it.
    f.payload.resize(kMaxFrameSize);  // body = 1 + kMaxFrameSize > max
    EXPECT_FALSE((*conn)->Send(f).ok());
    (*conn)->Close();
  });
  auto victim2 = listener->Accept();
  ASSERT_TRUE(victim2.ok());
  attacker2.join();
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close the listener, then try to connect.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener->bound_port();
  listener->Close();
  auto client = TcpConnect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

TEST(Tcp, InvalidAddressRejected) {
  EXPECT_FALSE(TcpConnect("not-an-ip", 80).ok());
}

TEST(Tcp, MultipleSequentialConnections) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    for (int i = 0; i < 3; ++i) {
      auto conn = listener->Accept();
      ASSERT_TRUE(conn.ok());
      auto f = (*conn)->Receive();
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE((*conn)->Send(*f).ok());
    }
  });
  for (int i = 0; i < 3; ++i) {
    auto client = TcpConnect("127.0.0.1", listener->bound_port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Send(MakeFrame(1, std::to_string(i))).ok());
    EXPECT_EQ(ToString((*client)->Receive().value().payload),
              std::to_string(i));
  }
  server.join();
}

}  // namespace
}  // namespace lw::net
