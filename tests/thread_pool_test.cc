// ThreadPool tests: exact range coverage (every index once), degenerate
// ranges, nested ParallelFor, exception propagation, reuse across rounds,
// and concurrent callers. Run under tsan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace lw {
namespace {

// Marks every index in [begin,end) and checks each was visited exactly once.
void ExpectExactCoverage(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain) {
  std::vector<std::atomic<int>> hits(end);
  pool.ParallelFor(begin, end, grain, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < end; ++i) {
    EXPECT_EQ(hits[i].load(), i >= begin ? 1 : 0) << "index " << i;
  }
}

class ThreadPoolTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolTest, CoversRangesExactlyOnce) {
  ThreadPool pool(GetParam());
  ExpectExactCoverage(pool, 0, 1, 1);          // single element
  ExpectExactCoverage(pool, 0, 64, 1);         // divisible
  ExpectExactCoverage(pool, 0, 1000, 7);       // non-divisible grain
  ExpectExactCoverage(pool, 3, 17, 100);       // grain > range
  ExpectExactCoverage(pool, 0, 4096, 64);      // many chunks
  ExpectExactCoverage(pool, 100, 100, 1);      // empty range is a no-op
}

TEST_P(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(0, 100, 3, [&](std::size_t b, std::size_t e) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2);
  }
}

TEST_P(ThreadPoolTest, NestedParallelForRunsInline) {
  // A worker that itself calls ParallelFor must not deadlock waiting for
  // pool slots it occupies; nested calls degrade to inline execution.
  ThreadPool pool(GetParam());
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.ParallelFor(0, 10, 1, [&](std::size_t ib, std::size_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 80u);
}

TEST_P(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(GetParam());
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) {
                           if (i == 40) throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool stays usable after an exception.
  ExpectExactCoverage(pool, 0, 128, 8);
}

TEST_P(ThreadPoolTest, ConcurrentCallersSerialize) {
  // Several external threads hammer one pool; each call must still see
  // exact coverage of its own range.
  ThreadPool pool(GetParam());
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &failures] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> count{0};
        pool.ParallelFor(0, 500, 9, [&](std::size_t b, std::size_t e) {
          count.fetch_add(e - b);
        });
        if (count.load() != 500) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ThreadPoolTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(ThreadPool, SingleThreadSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::set<std::thread::id> seen;
  std::mutex mu;
  pool.ParallelFor(0, 100, 1, [&](std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::HardwareThreads());
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPool, CallerParticipatesInWork) {
  // The calling thread claims chunks itself, so work completes even if
  // workers are slow to wake. Chunks are slowed down so workers cannot
  // drain the whole range before the caller claims its first chunk.
  ThreadPool pool(4);
  std::atomic<bool> caller_ran{false};
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 64, 1, [&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() == caller) caller_ran.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_TRUE(caller_ran.load());
}

}  // namespace
}  // namespace lw
