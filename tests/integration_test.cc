// Whole-system integration: synthetic corpus → universes → browser sessions.
//
// Publishes a C4-like corpus (many domains, log-normal page sizes) into a
// universe, then drives Zipf browsing sessions through the browser and
// checks the global invariants: every page view renders, and the data
// channel sees EXACTLY fetches_per_page queries per visit regardless of
// page, domain, hit, or miss.
#include <gtest/gtest.h>

#include <set>

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"
#include "workload/workload.h"

namespace lw::lightweb {
namespace {

class CorpusUniverse {
 public:
  CorpusUniverse()
      : corpus_(workload::C4Like(kPages, /*seed=*/11)),
        universe_(Config()) {
    // One publisher per synthetic domain, each with a generic one-route
    // site: /page/:id fetches the page blob and renders its text.
    std::set<std::string> domains;
    for (std::uint64_t i = 0; i < kPages; ++i) {
      domains.insert(corpus_.DomainOf(i));
    }
    for (const std::string& domain : domains) {
      Publisher pub("pub-" + domain);
      SiteBuilder site(domain);
      site.SetSiteName(domain).AddRoute(
          "/page/:id", {"{domain}/page/{id}"},
          "# {{site}} page {{id}}\n{{data0.text}}\n");
      EXPECT_TRUE(pub.PublishSite(universe_, site).ok()) << domain;
      publishers_.emplace(domain, std::move(pub));
    }
    for (std::uint64_t i = 0; i < kPages; ++i) {
      const workload::SyntheticPage page = corpus_.GetPage(i);
      const std::string domain = corpus_.DomainOf(i);
      // Raw payload push (the payload is already JSON text).
      const Status s = universe_.PushData("pub-" + domain, page.path,
                                          page.payload);
      published_ += s.ok();  // rare hash collisions are expected and fine
    }
  }

  static constexpr std::uint64_t kPages = 2000;

  static UniverseConfig Config() {
    UniverseConfig c;
    c.name = "integration";
    c.code_domain_bits = 10;
    c.code_blob_size = 4096;
    c.data_domain_bits = 16;
    c.data_blob_size = 4096;
    c.fetches_per_page = 3;
    c.master_seed = Bytes(16, 0x5c);
    return c;
  }

  const workload::SyntheticCorpus& corpus() const { return corpus_; }
  const Universe& universe() const { return universe_; }
  int published() const { return published_; }

 private:
  workload::SyntheticCorpus corpus_;
  Universe universe_;
  std::map<std::string, Publisher> publishers_;
  int published_ = 0;
};

// Shared across tests in this file (construction publishes 2000 blobs).
CorpusUniverse& SharedCorpusUniverse() {
  static CorpusUniverse* cu = new CorpusUniverse();
  return *cu;
}

TEST(Integration, CorpusPublishes) {
  CorpusUniverse& cu = SharedCorpusUniverse();
  // With 2000 keys in a 2^16 domain, expect only a handful of collisions.
  EXPECT_GT(cu.published(), 1950);
  EXPECT_EQ(cu.universe().total_pages(),
            static_cast<std::size_t>(cu.published()));
  EXPECT_GT(cu.universe().total_domains(), 0u);
}

TEST(Integration, ZipfSessionsKeepTrafficInvariant) {
  CorpusUniverse& cu = SharedCorpusUniverse();
  BrowserConfig config;
  config.fetches_per_page = cu.universe().fetches_per_page();
  config.code_cache_capacity = 4;  // smaller than #domains: forces misses
  Browser browser(
      std::make_unique<InProcessPirChannel>(cu.universe().code_store()),
      std::make_unique<InProcessPirChannel>(cu.universe().data_store()),
      config);

  workload::SessionGenerator session(cu.corpus(), 1.0, 0.7, /*seed=*/99);
  const int kVisits = 60;
  int rendered = 0;
  for (int v = 0; v < kVisits; ++v) {
    auto page = browser.Visit(session.NextVisit());
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    rendered += !page->text.empty();
    EXPECT_EQ(page->real_fetches + page->dummy_fetches,
              cu.universe().fetches_per_page());
  }
  EXPECT_EQ(rendered, kVisits);
  // THE invariant: total data-channel queries = visits × budget, exactly.
  EXPECT_EQ(browser.data_channel().observed_queries(),
            static_cast<std::uint64_t>(kVisits) *
                static_cast<std::uint64_t>(
                    cu.universe().fetches_per_page()));
  // Code-channel queries = cache misses only.
  EXPECT_EQ(browser.code_channel().observed_queries(),
            browser.code_cache_misses());
  EXPECT_GT(browser.code_cache_hits(), 0u);
}

TEST(Integration, ContentRoundTripsThroughFullStack) {
  CorpusUniverse& cu = SharedCorpusUniverse();
  BrowserConfig config;
  config.fetches_per_page = cu.universe().fetches_per_page();
  Browser browser(
      std::make_unique<InProcessPirChannel>(cu.universe().code_store()),
      std::make_unique<InProcessPirChannel>(cu.universe().data_store()),
      config);

  // Spot-check: rendered pages carry the corpus text for published blobs.
  int checked = 0;
  for (std::uint64_t i = 0; i < CorpusUniverse::kPages && checked < 10;
       i += 197) {
    const workload::SyntheticPage p = cu.corpus().GetPage(i);
    if (!cu.universe().data_store().Contains(p.path)) continue;  // collided
    auto page = browser.Visit(p.path);
    ASSERT_TRUE(page.ok()) << p.path;
    ASSERT_TRUE(page->fetch_status.at(0).ok()) << p.path;
    // The render contains the page id header.
    EXPECT_NE(page->text.find("page " + std::to_string(i)),
              std::string::npos);
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(Integration, UpdatesPropagateImmediately) {
  CorpusUniverse& cu = SharedCorpusUniverse();
  // Publishers can update a live page; browsers see the new content on the
  // next visit (data blobs are never cached client-side).
  const workload::SyntheticPage p = cu.corpus().GetPage(7);
  const std::string domain = cu.corpus().DomainOf(7);
  Universe& universe = const_cast<Universe&>(cu.universe());
  ASSERT_TRUE(universe
                  .PushData("pub-" + domain, p.path,
                            ToBytes(R"({"text":"freshly edited"})"))
                  .ok());

  BrowserConfig config;
  config.fetches_per_page = cu.universe().fetches_per_page();
  Browser browser(
      std::make_unique<InProcessPirChannel>(cu.universe().code_store()),
      std::make_unique<InProcessPirChannel>(cu.universe().data_store()),
      config);
  auto page = browser.Visit(p.path);
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("freshly edited"), std::string::npos);
}

}  // namespace
}  // namespace lw::lightweb
