// Private aggregate statistics tests: share splitting, aggregation,
// combination, serialization, and the privacy property that a single share
// is (statistically) uninformative.
#include <gtest/gtest.h>

#include "stats/private_stats.h"
#include "util/rand.h"

namespace lw::stats {
namespace {

TEST(SplitIndicator, SharesSumToIndicator) {
  for (std::size_t bucket : {0u, 3u, 9u}) {
    const ReportShares r = SplitIndicator(10, bucket);
    ASSERT_EQ(r.for_server0.size(), 10u);
    ASSERT_EQ(r.for_server1.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
      const std::uint64_t sum = r.for_server0[i] + r.for_server1[i];
      EXPECT_EQ(sum, i == bucket ? 1u : 0u) << "i=" << i;
    }
  }
}

TEST(SplitIndicator, SingleShareLooksRandom) {
  // Each share alone is uniform: check bucket values differ across reports
  // and are not simply 0/1.
  const ReportShares a = SplitIndicator(4, 2);
  const ReportShares b = SplitIndicator(4, 2);
  EXPECT_NE(a.for_server0, b.for_server0);
  int trivial = 0;
  for (std::uint64_t v : a.for_server0) trivial += (v <= 1);
  EXPECT_LT(trivial, 4);  // overwhelming probability
}

TEST(SplitIndicator, RejectsBadBucket) {
  EXPECT_THROW(SplitIndicator(4, 4), InvariantViolation);
}

TEST(Aggregation, EndToEndCounts) {
  constexpr std::size_t kDomains = 5;
  AggregationServer s0(kDomains), s1(kDomains);

  // 100 clients report visits; we track ground truth.
  std::vector<std::uint64_t> truth(kDomains, 0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::size_t bucket = rng.UniformInt(kDomains);
    ++truth[bucket];
    const ReportShares r = SplitIndicator(kDomains, bucket);
    ASSERT_TRUE(s0.Accept(r.for_server0).ok());
    ASSERT_TRUE(s1.Accept(r.for_server1).ok());
  }
  EXPECT_EQ(s0.reports_accepted(), 100u);

  auto combined = CombineTotals(s0.totals(), s1.totals());
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(*combined, truth);

  // Each server's accumulator alone does not equal the truth (whp).
  EXPECT_NE(s0.totals(), truth);
}

TEST(Aggregation, RejectsWrongLength) {
  AggregationServer s(4);
  EXPECT_FALSE(s.Accept(Share(5, 0)).ok());
  EXPECT_EQ(s.reports_accepted(), 0u);
}

TEST(Aggregation, Reset) {
  AggregationServer s(2);
  ASSERT_TRUE(s.Accept(Share{1, 2}).ok());
  s.Reset();
  EXPECT_EQ(s.reports_accepted(), 0u);
  EXPECT_EQ(s.totals(), (Share{0, 0}));
}

TEST(Aggregation, CombineRejectsMismatch) {
  EXPECT_FALSE(CombineTotals(Share{1}, Share{1, 2}).ok());
}

TEST(ShareSerialization, RoundTrip) {
  const Share share{0, 1, 0xffffffffffffffffULL, 42};
  auto parsed = DeserializeShare(SerializeShare(share));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, share);
}

TEST(ShareSerialization, RejectsTruncated) {
  Bytes wire = SerializeShare(Share{1, 2, 3});
  wire.pop_back();
  EXPECT_FALSE(DeserializeShare(wire).ok());
}

TEST(DomainStats, ReportAndBill) {
  DomainQueryStats stats({"cnn.com", "nytimes.com", "poodles.org"});
  AggregationServer s0(stats.num_domains()), s1(stats.num_domains());

  const auto visit = [&](std::string_view domain) {
    auto r = stats.MakeReport(domain);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(s0.Accept(r->for_server0).ok());
    ASSERT_TRUE(s1.Accept(r->for_server1).ok());
  };
  visit("nytimes.com");
  visit("nytimes.com");
  visit("poodles.org");

  auto combined = CombineTotals(s0.totals(), s1.totals());
  ASSERT_TRUE(combined.ok());
  auto labeled = stats.LabelTotals(*combined);
  ASSERT_TRUE(labeled.ok());
  ASSERT_EQ(labeled->size(), 3u);
  for (const auto& dc : *labeled) {
    if (dc.domain == "nytimes.com") {
      EXPECT_EQ(dc.count, 2u);
    }
    if (dc.domain == "poodles.org") {
      EXPECT_EQ(dc.count, 1u);
    }
    if (dc.domain == "cnn.com") {
      EXPECT_EQ(dc.count, 0u);
    }
  }
}

TEST(DomainStats, UnknownDomainRejected) {
  DomainQueryStats stats({"a.com"});
  EXPECT_FALSE(stats.MakeReport("b.com").ok());
}

}  // namespace
}  // namespace lw::stats
