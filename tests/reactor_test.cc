// Reactor tests: the epoll event loop under load, under abuse, and under a
// FakeClock.
//
// The torture tests run hundreds of in-process clients against one loop
// thread — well-behaved framed clients interleaved with mid-frame
// disconnectors and slow-loris tricklers — because the reactor's whole value
// proposition is that misbehaving connections cost a buffer, not a thread.
// Timer expiry (idle and write-stall) is driven by FakeClock Advance() +
// Wakeup(), so the deadline tests take zero wall-clock time. The
// equivalence test serves the same PIR store through both serving models
// and requires byte-identical answers (docs/ARCHITECTURE.md).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/faulty.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/rand.h"
#include "zltp/client.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw::net {
namespace {

Frame MakeFrame(std::uint8_t type, std::string_view payload) {
  Frame f;
  f.type = type;
  f.payload = ToBytes(payload);
  return f;
}

// Spins (real time) until `pred` holds; the reactor runs on its own thread,
// so cross-thread observation needs a bounded wait.
bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds budget = std::chrono::seconds(10)) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// A raw client socket, for tests that must send *partial* frames — the
// Transport API only speaks complete ones.
int RawConnect(std::uint16_t port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf > 0) {
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Collects on_close reasons so tests can assert why a connection died.
struct CloseLog {
  std::mutex mu;
  std::vector<Status> reasons;
  void Add(const Status& s) {
    std::lock_guard<std::mutex> lock(mu);
    reasons.push_back(s);
  }
  std::size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return reasons.size();
  }
  Status first() {
    std::lock_guard<std::mutex> lock(mu);
    return reasons.empty() ? Status::Ok() : reasons.front();
  }
};

Reactor::Handler EchoHandler(Reactor& reactor, CloseLog* closes = nullptr) {
  Reactor::Handler h;
  h.on_frame = [&reactor](Reactor::ConnId id, Frame frame) {
    (void)reactor.Send(id, frame);
  };
  if (closes != nullptr) {
    h.on_close = [closes](Reactor::ConnId, const Status& s) {
      closes->Add(s);
    };
  }
  return h;
}

std::uint16_t StartEcho(Reactor& reactor, CloseLog* closes = nullptr) {
  auto listener = TcpListener::Listen(0);
  EXPECT_TRUE(listener.ok());
  const std::uint16_t port = listener->bound_port();
  EXPECT_TRUE(
      reactor.AddListener(std::move(*listener), EchoHandler(reactor, closes))
          .ok());
  EXPECT_TRUE(reactor.Start().ok());
  return port;
}

TEST(Reactor, EchoRoundTrip) {
  Reactor reactor;
  const std::uint16_t port = StartEcho(reactor);
  auto client = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Send(MakeFrame(7, "ping")).ok());
  auto got = (*client)->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakeFrame(7, "ping"));
  reactor.Stop();
}

TEST(Reactor, PipelinedFramesKeepOrder) {
  Reactor reactor;
  const std::uint16_t port = StartEcho(reactor);
  auto client = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        (*client)->Send(MakeFrame(1, "msg-" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 64; ++i) {
    auto got = (*client)->Receive();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(got->payload), "msg-" + std::to_string(i));
  }
  reactor.Stop();
}

TEST(Reactor, SendToUnknownIdIsUnavailable) {
  Reactor reactor;
  StartEcho(reactor);
  EXPECT_EQ(reactor.Send(999999, MakeFrame(1, "x")).code(),
            StatusCode::kUnavailable);
  reactor.Stop();
}

TEST(Reactor, TortureManyClientsWithAbusers) {
  // 96 well-behaved framed clients, each echoing 5 frames, interleaved with
  // 48 abusers: half disconnect mid-frame (a length prefix with no body),
  // half slow-loris a whole frame one byte at a time and still expect the
  // echo. One loop thread must survive all of it with every well-behaved
  // reply intact and every connection eventually reaped.
  constexpr int kGood = 96;
  constexpr int kMidFrame = 24;
  constexpr int kLoris = 24;
  Reactor reactor;
  const std::uint16_t port = StartEcho(reactor);

  std::atomic<int> good_ok{0};
  std::atomic<int> loris_ok{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kGood; ++c) {
    threads.emplace_back([&, c] {
      auto client = TcpConnect("127.0.0.1", port);
      if (!client.ok()) return;
      Rng rng(static_cast<std::uint64_t>(c) + 7);
      for (int i = 0; i < 5; ++i) {
        Bytes payload(1 + rng.UniformInt(2000));
        rng.Fill(payload);
        Frame f;
        f.type = static_cast<std::uint8_t>(1 + (i % 5));
        f.payload = payload;
        if (!(*client)->Send(f).ok()) return;
        auto got = (*client)->Receive();
        if (!got.ok() || *got != f) return;
      }
      ++good_ok;
    });
  }
  for (int c = 0; c < kMidFrame; ++c) {
    threads.emplace_back([&] {
      const int fd = RawConnect(port);
      if (fd < 0) return;
      // Promise a 1KB frame, deliver two header bytes, vanish.
      const unsigned char partial[2] = {0x00, 0x04};
      (void)::send(fd, partial, sizeof(partial), MSG_NOSIGNAL);
      ::close(fd);
    });
  }
  for (int c = 0; c < kLoris; ++c) {
    threads.emplace_back([&] {
      const int fd = RawConnect(port);
      if (fd < 0) return;
      // One complete 5-byte frame (type + "drip"), trickled byte by byte.
      const unsigned char wire[9] = {0x05, 0x00, 0x00, 0x00,
                                     0x02, 'd',  'r',  'i', 'p'};
      for (unsigned char b : wire) {
        if (::send(fd, &b, 1, MSG_NOSIGNAL) != 1) {
          ::close(fd);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      unsigned char echo[9] = {};
      std::size_t off = 0;
      while (off < sizeof(echo)) {
        const ssize_t n = ::recv(fd, echo + off, sizeof(echo) - off, 0);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
      if (off == sizeof(echo) && std::memcmp(echo, wire, sizeof(wire)) == 0) {
        ++loris_ok;
      }
      ::close(fd);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(good_ok.load(), kGood);
  EXPECT_EQ(loris_ok.load(), kLoris);
  // Every client has closed its side; the loop must reap them all.
  EXPECT_TRUE(WaitUntil([&] { return reactor.connection_count() == 0; }));
  reactor.Stop();
}

TEST(Reactor, IdleTimeoutClosesSlowLoris) {
  // FakeClock-driven: a peer that never completes a frame is cut off after
  // idle_timeout with DEADLINE_EXCEEDED, in zero real time.
  FakeClock clock;
  Reactor::Options options;
  options.clock = &clock;
  options.idle_timeout = std::chrono::seconds(5);
  Reactor reactor(options);
  CloseLog closes;
  const std::uint16_t port = StartEcho(reactor, &closes);

  const int fd = RawConnect(port);
  ASSERT_GE(fd, 0);
  const unsigned char partial[3] = {0x10, 0x00, 0x00};  // header, no body
  ASSERT_EQ(::send(fd, partial, sizeof(partial), MSG_NOSIGNAL), 3);
  ASSERT_TRUE(WaitUntil([&] { return reactor.connection_count() == 1; }));

  clock.Advance(std::chrono::seconds(6));
  reactor.Wakeup();
  ASSERT_TRUE(WaitUntil([&] { return closes.size() == 1; }));
  EXPECT_EQ(closes.first().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(reactor.connection_count(), 0u);
  ::close(fd);
  reactor.Stop();
}

TEST(Reactor, IdleTimerSparesActiveConnections) {
  FakeClock clock;
  Reactor::Options options;
  options.clock = &clock;
  options.idle_timeout = std::chrono::seconds(5);
  Reactor reactor(options);
  const std::uint16_t port = StartEcho(reactor);

  auto client = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  for (int round = 0; round < 3; ++round) {
    // Each completed frame resets the idle basis, so a connection that
    // keeps talking survives arbitrarily many sub-timeout advances.
    clock.Advance(std::chrono::seconds(4));
    reactor.Wakeup();
    ASSERT_TRUE((*client)->Send(MakeFrame(1, "alive")).ok());
    auto got = (*client)->Receive();
    ASSERT_TRUE(got.ok());
  }
  EXPECT_EQ(reactor.connection_count(), 1u);
  reactor.Stop();
}

TEST(Reactor, WriteStallTimeoutClosesNonReader) {
  // A peer that stops reading while replies are queued is cut off once the
  // queue makes no progress for write_stall_timeout.
  FakeClock clock;
  Reactor::Options options;
  options.clock = &clock;
  options.write_stall_timeout = std::chrono::seconds(2);
  Reactor reactor(options);
  CloseLog closes;
  std::atomic<Reactor::ConnId> conn_id{0};
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener->bound_port();
  Reactor::Handler handler;
  handler.on_open = [&](Reactor::ConnId id) { conn_id.store(id); };
  handler.on_close = [&](Reactor::ConnId, const Status& s) { closes.Add(s); };
  ASSERT_TRUE(reactor.AddListener(std::move(*listener), handler).ok());
  ASSERT_TRUE(reactor.Start().ok());

  // Tiny client receive buffer so the kernel absorbs little and the send
  // queue actually backs up.
  const int fd = RawConnect(port, /*rcvbuf=*/4096);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WaitUntil([&] { return conn_id.load() != 0; }));

  const std::uint64_t before_closes = obs::M().reactor_timer_closes.Value();
  Frame big;
  big.type = 1;
  big.payload.assign(4 * 1024 * 1024, 0xab);
  for (int i = 0; i < 8; ++i) {
    const Status s = reactor.Send(conn_id.load(), big);
    if (!s.ok()) break;  // queue cap — even more certainly stalled
  }
  // Let the loop flush what the kernel will take, then freeze time forward.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  clock.Advance(std::chrono::seconds(3));
  reactor.Wakeup();
  ASSERT_TRUE(WaitUntil([&] { return closes.size() == 1; }));
  EXPECT_EQ(closes.first().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(obs::M().reactor_timer_closes.Value(), before_closes);
  ::close(fd);
  reactor.Stop();
}

TEST(Reactor, PartialWriteResumeDeliversHugeReply) {
  // A reply far bigger than any socket buffer must arrive intact through
  // the EAGAIN/partial-write resume path, and the partial-write counter
  // must show that path actually ran.
  Reactor reactor;
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener->bound_port();
  Frame big;
  big.type = 9;
  {
    Rng rng(42);
    big.payload.resize(24 * 1024 * 1024);
    rng.Fill(big.payload);
  }
  Reactor::Handler handler;
  handler.on_frame = [&](Reactor::ConnId id, Frame) {
    (void)reactor.Send(id, big);
  };
  ASSERT_TRUE(reactor.AddListener(std::move(*listener), handler).ok());
  ASSERT_TRUE(reactor.Start().ok());

  const std::uint64_t before = obs::M().reactor_partial_writes.Value();
  auto client = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Send(MakeFrame(1, "gimme")).ok());
  auto got = (*client)->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->type, big.type);
  EXPECT_EQ(got->payload, big.payload);
  EXPECT_GT(obs::M().reactor_partial_writes.Value(), before);
  reactor.Stop();
}

TEST(Reactor, SendQueueOverflowClosesConnection) {
  // A reader far enough behind to exceed the queue cap gets
  // RESOURCE_EXHAUSTED on the producer side and a close, not unbounded
  // server memory.
  Reactor::Options options;
  options.max_send_queue_bytes = 1024 * 1024;
  Reactor reactor(options);
  CloseLog closes;
  std::atomic<Reactor::ConnId> conn_id{0};
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener->bound_port();
  Reactor::Handler handler;
  handler.on_open = [&](Reactor::ConnId id) { conn_id.store(id); };
  handler.on_close = [&](Reactor::ConnId, const Status& s) { closes.Add(s); };
  ASSERT_TRUE(reactor.AddListener(std::move(*listener), handler).ok());
  ASSERT_TRUE(reactor.Start().ok());

  const int fd = RawConnect(port, /*rcvbuf=*/4096);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WaitUntil([&] { return conn_id.load() != 0; }));

  Frame chunk;
  chunk.type = 1;
  chunk.payload.assign(64 * 1024, 0xcd);
  Status last = Status::Ok();
  for (int i = 0; i < 4096 && last.ok(); ++i) {
    last = reactor.Send(conn_id.load(), chunk);
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(WaitUntil([&] { return closes.size() == 1; }));
  ::close(fd);
  reactor.Stop();
}

TEST(Reactor, CloseAfterFlushDeliversQueuedReply) {
  // The "error frame, then hang up" shape: the reply queued before
  // CloseAfterFlush must reach the peer before the connection dies.
  Reactor reactor;
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener->bound_port();
  Reactor::Handler handler;
  handler.on_frame = [&](Reactor::ConnId id, Frame frame) {
    (void)reactor.Send(id, frame);
    reactor.CloseAfterFlush(id);
  };
  ASSERT_TRUE(reactor.AddListener(std::move(*listener), handler).ok());
  ASSERT_TRUE(reactor.Start().ok());

  auto client = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Send(MakeFrame(3, "last")).ok());
  auto got = (*client)->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakeFrame(3, "last"));
  auto after = (*client)->Receive();
  EXPECT_FALSE(after.ok());
  reactor.Stop();
}

TEST(Reactor, StopClosesEverythingAndIsIdempotent) {
  Reactor reactor;
  CloseLog closes;
  const std::uint16_t port = StartEcho(reactor, &closes);
  auto c1 = TcpConnect("127.0.0.1", port);
  auto c2 = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(c1.ok() && c2.ok());
  ASSERT_TRUE(WaitUntil([&] { return reactor.connection_count() == 2; }));
  reactor.Stop();
  reactor.Stop();  // idempotent
  EXPECT_EQ(reactor.connection_count(), 0u);
  EXPECT_EQ(closes.size(), 2u);
  EXPECT_FALSE((*c1)->Receive().ok());
}

// ------------------------------------------------- outbound connections

TEST(Reactor, OutboundConnectQueuesSendsThroughHandshake) {
  Reactor reactor;
  const std::uint16_t port = StartEcho(reactor);

  std::mutex mu;
  std::vector<Frame> replies;
  std::atomic<int> opens{0};
  Reactor::Handler client;
  client.on_open = [&opens](Reactor::ConnId) { opens.fetch_add(1); };
  client.on_frame = [&](Reactor::ConnId, Frame frame) {
    std::lock_guard<std::mutex> lock(mu);
    replies.push_back(std::move(frame));
  };
  auto id = reactor.Connect("127.0.0.1", port, std::move(client));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Send immediately: the frame must queue while the non-blocking connect
  // finishes and flush on establishment — the id is usable from dial time.
  ASSERT_TRUE(reactor.Send(*id, MakeFrame(7, "through-the-handshake")).ok());
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return replies.size() == 1;
  }));
  EXPECT_EQ(opens.load(), 1);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(replies[0], MakeFrame(7, "through-the-handshake"));
  reactor.Stop();
}

TEST(Reactor, OutboundConnectRefusedSurfacesOnClose) {
  // Grab a free port, then close the listener so the dial is refused.
  std::uint16_t dead_port = 0;
  {
    auto listener = TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->bound_port();
  }
  Reactor reactor;
  ASSERT_TRUE(reactor.Start().ok());
  CloseLog closes;
  Reactor::Handler client;
  client.on_frame = [](Reactor::ConnId, Frame) {};
  client.on_close = [&closes](Reactor::ConnId, const Status& why) {
    closes.Add(why);
  };
  auto id = reactor.Connect("127.0.0.1", dead_port, std::move(client));
  ASSERT_TRUE(id.ok()) << id.status().ToString();  // dial starts; fails async
  ASSERT_TRUE(WaitUntil([&] { return closes.size() == 1; }));
  EXPECT_FALSE(closes.first().ok()) << "refused connect reported Ok close";
  reactor.Stop();
}

TEST(Reactor, EstablishedOutboundConnIsExemptFromIdleTimeout) {
  // A healthy outbound link is quiet between requests; the slow-loris
  // idle timer must not reap it once established (inbound conns and
  // unfinished handshakes stay covered).
  // The echo peer lives on its own timer-free reactor so only the
  // outbound side is under test (a shared reactor would idle-reap the
  // inbound echo conn and kill the link from the other end).
  Reactor server_reactor;
  const std::uint16_t port = StartEcho(server_reactor);

  FakeClock clock;
  Reactor::Options options;
  options.clock = &clock;
  options.idle_timeout = std::chrono::milliseconds(50);
  Reactor reactor(options);
  ASSERT_TRUE(reactor.Start().ok());

  CloseLog closes;
  std::mutex mu;
  std::vector<Frame> replies;
  Reactor::Handler client;
  client.on_frame = [&](Reactor::ConnId, Frame frame) {
    std::lock_guard<std::mutex> lock(mu);
    replies.push_back(std::move(frame));
  };
  client.on_close = [&closes](Reactor::ConnId, const Status& why) {
    closes.Add(why);
  };
  auto id = reactor.Connect("127.0.0.1", port, std::move(client));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(reactor.Send(*id, MakeFrame(3, "warm-up")).ok());
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return !replies.empty();
  }));

  // Way past the idle timeout with no traffic: the outbound conn stays.
  clock.Advance(std::chrono::seconds(5));
  reactor.Wakeup();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(closes.size(), 0u) << closes.first().ToString();

  // Still alive and serving.
  ASSERT_TRUE(reactor.Send(*id, MakeFrame(3, "still-here")).ok());
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return replies.size() == 2;
  }));
  reactor.Stop();
  server_reactor.Stop();
}

// ------------------------------------------------- serving equivalence

zltp::PirStore MakeStore() {
  zltp::PirStoreConfig config;
  config.domain_bits = 10;
  config.record_size = 256;
  config.keyword_seed = Bytes(16, 0x7e);
  return zltp::PirStore(config);
}

TEST(Reactor, PirRepliesMatchThreadedServing) {
  // The same store, served both ways; private GETs for the same indices
  // must produce byte-identical records. This is the A/B contract that
  // makes --serve-mode an implementation detail rather than a behavior
  // change (docs/ARCHITECTURE.md).
  zltp::PirStore store = MakeStore();
  {
    Rng rng(5);
    Bytes value(100);
    for (int i = 0; i < 40; ++i) {
      rng.Fill(value);
      const Status published =
          store.Publish("page/" + std::to_string(i), value);
      ASSERT_TRUE(published.ok()) << published.ToString();
    }
  }
  zltp::ServerOptions options;
  options.num_threads = 1;

  // Threaded pair.
  zltp::ZltpPirServer t_server0(store, 0, options);
  zltp::ZltpPirServer t_server1(store, 1, options);
  auto t_listener0 = TcpListener::Listen(0);
  auto t_listener1 = TcpListener::Listen(0);
  ASSERT_TRUE(t_listener0.ok() && t_listener1.ok());
  std::thread accept0([&] {
    for (;;) {
      auto conn = t_listener0->Accept();
      if (!conn.ok()) return;
      t_server0.ServeConnectionDetached(std::move(*conn));
    }
  });
  std::thread accept1([&] {
    for (;;) {
      auto conn = t_listener1->Accept();
      if (!conn.ok()) return;
      t_server1.ServeConnectionDetached(std::move(*conn));
    }
  });

  // Reactor pair (reactor declared before the servers' callbacks can
  // outlive it is not a concern here: Stop() runs before teardown).
  Reactor reactor;
  zltp::ZltpPirServer r_server0(store, 0, options);
  zltp::ZltpPirServer r_server1(store, 1, options);
  auto r_listener0 = TcpListener::Listen(0);
  auto r_listener1 = TcpListener::Listen(0);
  ASSERT_TRUE(r_listener0.ok() && r_listener1.ok());
  const std::uint16_t r_port0 = r_listener0->bound_port();
  const std::uint16_t r_port1 = r_listener1->bound_port();
  ASSERT_TRUE(r_server0.ServeOnReactor(reactor, std::move(*r_listener0)).ok());
  ASSERT_TRUE(r_server1.ServeOnReactor(reactor, std::move(*r_listener1)).ok());
  ASSERT_TRUE(reactor.Start().ok());

  auto connect_session = [&](std::uint16_t p0, std::uint16_t p1) {
    auto c0 = TcpConnect("127.0.0.1", p0);
    auto c1 = TcpConnect("127.0.0.1", p1);
    EXPECT_TRUE(c0.ok() && c1.ok());
    return zltp::PirSession::Establish(std::move(*c0), std::move(*c1));
  };
  auto threaded = connect_session(t_listener0->bound_port(),
                                  t_listener1->bound_port());
  auto reactored = connect_session(r_port0, r_port1);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  ASSERT_TRUE(reactored.ok()) << reactored.status().ToString();

  Rng rng(11);
  const std::uint64_t domain = std::uint64_t{1} << store.domain_bits();
  for (int i = 0; i < 24; ++i) {
    const std::uint64_t index = rng.UniformInt(domain);
    auto a = threaded->PrivateGetIndex(index);
    auto b = reactored->PrivateGetIndex(index);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(*a, *b) << "index " << index;
  }
  threaded->Close();
  reactored->Close();

  reactor.Stop();
  t_listener0->Close();
  t_listener1->Close();
  accept0.join();
  accept1.join();
}

// ----------------------------------------------- tcp send-path regression

TEST(Tcp, InfiniteDeadlineSendSurvivesBackpressure) {
  // Regression for the send path: a frame bigger than both socket buffers,
  // sent with an infinite deadline, must wait out EAGAIN (poll, resume) —
  // not fail and not spin. The receiver starts reading only after the
  // sender is deep into backpressure.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = TcpConnect("127.0.0.1", listener->bound_port());
  ASSERT_TRUE(client.ok());
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.ok());

  Frame big;
  big.type = 2;
  {
    Rng rng(77);
    big.payload.resize(32 * 1024 * 1024);
    rng.Fill(big.payload);
  }
  std::thread sender([&] {
    EXPECT_TRUE((*client)->Send(big, Deadline::Infinite()).ok());
  });
  // Give the sender time to fill the kernel buffers and hit EAGAIN.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto got = (*server_side)->Receive();
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, big.payload);
}

TEST(Tcp, FlakySendRecoversAfterBlips) {
  // The Flaky decorator injects transient UNAVAILABLE blips; a simple
  // resend loop (what the session retry layer does) must get the frame
  // through on the first post-blip attempt.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto raw = TcpConnect("127.0.0.1", listener->bound_port());
  ASSERT_TRUE(raw.ok());
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.ok());

  FlakyTransport flaky(std::move(*raw), /*failures=*/2);
  const Frame f = MakeFrame(4, "through the blips");
  int attempts = 0;
  Status s = UnavailableError("not yet");
  while (!s.ok() && attempts < 10) {
    ++attempts;
    s = flaky.Send(f);
  }
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(attempts, 3) << "two injected blips, then success";
  auto got = (*server_side)->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, f);
}

}  // namespace
}  // namespace lw::net
