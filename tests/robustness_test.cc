// Adversarial-input robustness: every deserializer in the system must turn
// arbitrary bytes into a clean error — never crash, never throw, never
// accept-and-misbehave. (Servers parse attacker-controlled frames.)
#include <gtest/gtest.h>

#include "dpf/dpf.h"
#include "json/json.h"
#include "lightweb/access.h"
#include "lightweb/lightscript.h"
#include "net/transport.h"
#include "pir/packing.h"
#include "stats/private_stats.h"
#include "util/rand.h"
#include "zltp/messages.h"

namespace lw {
namespace {

// Deterministic corpus of adversarial buffers: random bytes at many sizes,
// plus structured-ish corruptions of valid messages.
std::vector<Bytes> Corpus() {
  std::vector<Bytes> out;
  Rng rng(20260706);
  for (std::size_t size : {0u, 1u, 2u, 5u, 17u, 18u, 100u, 391u, 392u,
                           393u, 4096u}) {
    for (int variant = 0; variant < 20; ++variant) {
      Bytes b(size);
      rng.Fill(b);
      out.push_back(std::move(b));
    }
  }
  // Mutations of a genuine DPF key.
  const Bytes valid = dpf::Generate(77, 12).key0.Serialize();
  for (int i = 0; i < 50; ++i) {
    Bytes mutated = valid;
    const std::size_t pos = rng.UniformInt(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    out.push_back(std::move(mutated));
    Bytes truncated(valid.begin(),
                    valid.begin() + static_cast<std::ptrdiff_t>(
                                        rng.UniformInt(valid.size())));
    out.push_back(std::move(truncated));
  }
  return out;
}

TEST(Robustness, DpfKeyDeserialize) {
  for (const Bytes& input : Corpus()) {
    auto r = dpf::DpfKey::Deserialize(input);
    if (r.ok()) {
      // Accepted inputs must be internally consistent and evaluable.
      EXPECT_LE(r->domain_bits, dpf::kMaxDomainBits);
      if (r->domain_bits >= 1 && r->domain_bits <= 16) {
        (void)dpf::EvalPoint(*r, 0);
      }
    }
  }
}

TEST(Robustness, SubtreeKeyDeserialize) {
  for (const Bytes& input : Corpus()) {
    auto r = dpf::SubtreeKey::Deserialize(input);
    if (r.ok() && r->domain_bits >= 1 && r->domain_bits <= 12) {
      (void)dpf::EvalSubtree(*r);
    }
  }
}

TEST(Robustness, RecordUnpack) {
  for (const Bytes& input : Corpus()) {
    auto r = pir::UnpackRecord(input);
    if (r.ok()) {
      EXPECT_LE(r->payload.size(), input.size());
    }
  }
}

TEST(Robustness, ZltpMessageDecoders) {
  for (const Bytes& input : Corpus()) {
    for (std::uint8_t type = 0; type < 8; ++type) {
      net::Frame frame;
      frame.type = type;
      frame.payload = input;
      (void)zltp::DecodeClientHello(frame);
      (void)zltp::DecodeServerHello(frame);
      (void)zltp::DecodeGetRequest(frame);
      (void)zltp::DecodeGetResponse(frame);
      (void)zltp::DecodeError(frame);
    }
  }
}

TEST(Robustness, JsonParser) {
  Rng rng(7);
  for (const Bytes& input : Corpus()) {
    (void)json::Parse(ToString(input));
  }
  // Pathological near-JSON strings.
  for (const char* s :
       {"{{{{{{{{", "[[[[[[[[[[", "{\"a\":", "\"\\u12", "[1,2,3",
        "{\"k\":1e999999}", "-", "+1", "\"\\", "nullnull", "[null,]",
        "{\"a\"}", "\"\\ud83d\\ud83d\""}) {
    (void)json::Parse(s);
  }
}

TEST(Robustness, LightScriptParser) {
  for (const Bytes& input : Corpus()) {
    (void)lightweb::CodeProgram::Parse(ToString(input));
  }
  // Hostile but syntactically valid JSON programs.
  for (const char* s : {
           R"({"routes":[{"pattern":"/","render":"{{#each .}}{{#each .}}{{.}}{{/each}}{{/each}}"}]})",
           R"({"routes":[{"pattern":"/:a/:a","render":"{{a}}"}]})",
           R"({"routes":[{"pattern":"/","fetch":["{x|"],"render":"r"}]})",
       }) {
    auto program = lightweb::CodeProgram::Parse(s);
    if (program.ok()) {
      lightweb::LocalStorage local;
      auto plan = program->Plan("a.com", "/x/y", local);
      if (plan.ok()) {
        (void)program->Render(*plan, "a.com", "/x/y", local,
                              {json::Value()});
      }
    }
  }
}

TEST(Robustness, AccessControlDecrypt) {
  lightweb::ClientKeyring keyring;
  keyring.AddEpochKey(1, Bytes(32, 0x11));
  for (const Bytes& input : Corpus()) {
    (void)lightweb::IsEncryptedPayload(input);
    if (lightweb::IsEncryptedPayload(input)) {
      auto r = keyring.Decrypt("any/path", input);
      EXPECT_FALSE(r.ok());  // random bytes can never authenticate
    }
  }
}

TEST(Robustness, StatsShareDeserialize) {
  for (const Bytes& input : Corpus()) {
    (void)stats::DeserializeShare(input);
  }
}

TEST(Robustness, MutatedValidDpfKeyStillSafeToEvaluate) {
  // Bit-flipped-but-parseable keys must evaluate without UB (they just
  // produce garbage shares — integrity is a non-goal, §2.1).
  Rng rng(5);
  const dpf::KeyPair pair = dpf::Generate(100, 10);
  for (int i = 0; i < 100; ++i) {
    Bytes wire = pair.key0.Serialize();
    wire[2 + rng.UniformInt(wire.size() - 2)] ^= 0xff;  // keep header valid
    auto key = dpf::DpfKey::Deserialize(wire);
    if (key.ok()) {
      (void)dpf::EvalFull(*key);
    }
  }
}

}  // namespace
}  // namespace lw
