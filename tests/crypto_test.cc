// Crypto substrate tests against published test vectors (FIPS 197,
// RFC 8439, RFC 4231, RFC 5869, RFC 7748, SipHash reference vectors)
// plus structural/property tests.
#include <gtest/gtest.h>

#include <cstdint>

#include "crypto/aead.h"
#include "crypto/aes128.h"
#include "crypto/chacha20.h"
#include "crypto/ct.h"
#include "crypto/hkdf.h"
#include "crypto/poly1305.h"
#include "crypto/prg.h"
#include "crypto/sha256.h"
#include "crypto/siphash.h"
#include "crypto/x25519.h"
#include "util/hex.h"
#include "util/rand.h"

namespace lw::crypto {
namespace {

Bytes FromHex(std::string_view h) {
  auto r = HexDecode(h);
  EXPECT_TRUE(r.ok()) << h;
  return *r;
}

// ----------------------------------------------------- constant-time ops

TEST(Ct, Masks) {
  EXPECT_EQ(ct::NonzeroMask(0), 0u);
  EXPECT_EQ(ct::NonzeroMask(1), ~std::uint64_t{0});
  EXPECT_EQ(ct::NonzeroMask(~std::uint64_t{0}), ~std::uint64_t{0});
  EXPECT_EQ(ct::ZeroMask(0), ~std::uint64_t{0});
  EXPECT_EQ(ct::ZeroMask(42), 0u);
  EXPECT_EQ(ct::EqMask(7, 7), ~std::uint64_t{0});
  EXPECT_EQ(ct::EqMask(7, 8), 0u);
  EXPECT_EQ(ct::MaskFromBit32(0), 0u);
  EXPECT_EQ(ct::MaskFromBit32(1), ~std::uint32_t{0});
}

TEST(Ct, Select) {
  EXPECT_EQ(ct::Select(~std::uint64_t{0}, 11, 22), 11u);
  EXPECT_EQ(ct::Select(0, 11, 22), 22u);
  EXPECT_EQ(ct::Select32(~std::uint32_t{0}, 11, 22), 11u);
  EXPECT_EQ(ct::Select32(0, 11, 22), 22u);
}

TEST(Ct, Eq) {
  EXPECT_TRUE(ct::Eq(ToBytes("abc"), ToBytes("abc")));
  EXPECT_FALSE(ct::Eq(ToBytes("abc"), ToBytes("abd")));
  EXPECT_FALSE(ct::Eq(ToBytes("abc"), ToBytes("abcd")));
  EXPECT_TRUE(ct::Eq({}, {}));
  // Differences in any position are caught (no early-exit shortcuts).
  for (std::size_t i = 0; i < 32; ++i) {
    Bytes a(32, 0x5a), b(32, 0x5a);
    b[i] ^= 0x01;
    EXPECT_FALSE(ct::Eq(a, b)) << i;
    EXPECT_EQ(ct::EqBytesMask(a, b), 0u) << i;
  }
}

TEST(Ct, CondAssign) {
  Bytes dst = ToBytes("xxxx");
  ct::CondAssign(0, dst, ToBytes("yyyy"));
  EXPECT_EQ(ToString(dst), "xxxx");
  ct::CondAssign(~std::uint64_t{0}, dst, ToBytes("yyyy"));
  EXPECT_EQ(ToString(dst), "yyyy");
}

TEST(Ct, CondSwap) {
  Bytes a = ToBytes("left"), b = ToBytes("rite");
  ct::CondSwap(0, a, b);
  EXPECT_EQ(ToString(a), "left");
  ct::CondSwap(~std::uint64_t{0}, a, b);
  EXPECT_EQ(ToString(a), "rite");
  EXPECT_EQ(ToString(b), "left");
}

// ---------------------------------------------------------------- AES-128

TEST(Aes128, Fips197Vector) {
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = FromHex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  std::uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, NistSp800_38aVector) {
  const Bytes key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key);
  std::uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, BatchMatchesSingle) {
  const Bytes key = SecureRandom(16);
  Aes128 aes(key);
  constexpr std::size_t kN = 37;  // not a multiple of the pipeline width
  Bytes in = SecureRandom(kN * 16);
  Bytes batch(kN * 16);
  aes.EncryptBlocks(in.data(), batch.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint8_t one[16];
    aes.EncryptBlock(in.data() + i * 16, one);
    EXPECT_EQ(0, std::memcmp(one, batch.data() + i * 16, 16)) << "block " << i;
  }
}

TEST(Aes128, MmoIsEncryptXorInput) {
  const Bytes key = SecureRandom(16);
  Aes128 aes(key);
  Bytes in = SecureRandom(16 * 9);
  Bytes mmo(16 * 9);
  aes.MmoBlocks(in.data(), mmo.data(), 9);
  Bytes enc(16 * 9);
  aes.EncryptBlocks(in.data(), enc.data(), 9);
  for (std::size_t i = 0; i < enc.size(); ++i) {
    EXPECT_EQ(mmo[i], enc[i] ^ in[i]);
  }
}

TEST(Aes128, EncryptInPlace) {
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Aes128 aes(key);
  Bytes buf = FromHex("00112233445566778899aabbccddeeff");
  aes.EncryptBlocks(buf.data(), buf.data(), 1);
  EXPECT_EQ(HexEncode(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// ---------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439BlockFunction) {
  // RFC 8439 §2.3.2.
  const Bytes key =
      FromHex("000102030405060708090a0b0c0d0e0f"
              "101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = FromHex("000000090000004a00000000");
  std::uint8_t block[64];
  ChaCha20Block(key, nonce, 1, block);
  EXPECT_EQ(HexEncode(ByteSpan(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  // RFC 8439 §2.4.2.
  const Bytes key =
      FromHex("000102030405060708090a0b0c0d0e0f"
              "101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = FromHex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes buf = ToBytes(plaintext);
  ChaCha20Xor(key, nonce, 1, buf);
  EXPECT_EQ(HexEncode(ByteSpan(buf.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  // Decryption is the same operation.
  ChaCha20Xor(key, nonce, 1, buf);
  EXPECT_EQ(ToString(buf), plaintext);
}

TEST(ChaCha20, CounterAdvancesAcrossBlocks) {
  const Bytes key = SecureRandom(32);
  const Bytes nonce = SecureRandom(12);
  Bytes long_buf(150, 0);
  ChaCha20Xor(key, nonce, 0, long_buf);
  // Keystream for the second block should equal XORing starting at counter 1.
  Bytes second(64, 0);
  ChaCha20Xor(key, nonce, 1, second);
  EXPECT_TRUE(std::equal(second.begin(), second.end(), long_buf.begin() + 64));
}

// ---------------------------------------------------------------- Poly1305

TEST(Poly1305, Rfc8439Vector) {
  // RFC 8439 §2.5.2.
  const Bytes key =
      FromHex("85d6be7857556d337f4452fe42d506a8"
              "0103808afb0db2fd4abff6af4149f51b");
  const Bytes msg = ToBytes("Cryptographic Forum Research Group");
  std::uint8_t tag[16];
  Poly1305(key, msg, tag);
  EXPECT_EQ(HexEncode(ByteSpan(tag, 16)), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  const Bytes key = SecureRandom(32);
  const Bytes msg = SecureRandom(123);
  std::uint8_t one_shot[16];
  Poly1305(key, msg, one_shot);

  Poly1305State st(key);
  st.Update(ByteSpan(msg.data(), 7));
  st.Update(ByteSpan(msg.data() + 7, 50));
  st.Update(ByteSpan(msg.data() + 57, 66));
  std::uint8_t incremental[16];
  st.Finish(incremental);
  EXPECT_EQ(0, std::memcmp(one_shot, incremental, 16));
}

TEST(Poly1305, EmptyMessage) {
  const Bytes key = SecureRandom(32);
  std::uint8_t tag[16];
  Poly1305(key, {}, tag);  // must not crash; tag is just the pad
  std::uint8_t expected[16];
  std::memcpy(expected, key.data() + 16, 16);
  EXPECT_EQ(0, std::memcmp(tag, expected, 16));
}

// ---------------------------------------------------------------- AEAD

TEST(Aead, Rfc8439Vector) {
  // RFC 8439 §2.8.2.
  const Bytes key =
      FromHex("808182838485868788898a8b8c8d8e8f"
              "909192939495969798999a9b9c9d9e9f");
  const Bytes nonce = FromHex("070000004041424344454647");
  const Bytes aad = FromHex("50515253c0c1c2c3c4c5c6c7");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";

  const Bytes sealed = AeadSeal(key, nonce, aad, ToBytes(plaintext));
  ASSERT_EQ(sealed.size(), plaintext.size() + 16);
  EXPECT_EQ(HexEncode(ByteSpan(sealed.data(), 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(HexEncode(ByteSpan(sealed.data() + plaintext.size(), 16)),
            "1ae10b594f09e26a7e902ecbd0600691");

  auto opened = AeadOpen(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(ToString(*opened), plaintext);
}

TEST(Aead, RoundTripRandom) {
  const Bytes key = SecureRandom(32);
  const Bytes nonce = SecureRandom(12);
  const Bytes aad = SecureRandom(20);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 1000u}) {
    const Bytes pt = SecureRandom(len);
    const Bytes ct = AeadSeal(key, nonce, aad, pt);
    auto opened = AeadOpen(key, nonce, aad, ct);
    ASSERT_TRUE(opened.ok()) << "len=" << len;
    EXPECT_EQ(*opened, pt);
  }
}

TEST(Aead, TamperedCiphertextRejected) {
  const Bytes key = SecureRandom(32);
  const Bytes nonce = SecureRandom(12);
  Bytes ct = AeadSeal(key, nonce, {}, ToBytes("attack at dawn"));
  ct[3] ^= 1;
  auto opened = AeadOpen(key, nonce, {}, ct);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST(Aead, TamperedTagRejected) {
  const Bytes key = SecureRandom(32);
  const Bytes nonce = SecureRandom(12);
  Bytes ct = AeadSeal(key, nonce, {}, ToBytes("attack at dawn"));
  ct.back() ^= 0x80;
  EXPECT_FALSE(AeadOpen(key, nonce, {}, ct).ok());
}

TEST(Aead, WrongAadRejected) {
  const Bytes key = SecureRandom(32);
  const Bytes nonce = SecureRandom(12);
  const Bytes ct = AeadSeal(key, nonce, ToBytes("aad-1"), ToBytes("msg"));
  EXPECT_FALSE(AeadOpen(key, nonce, ToBytes("aad-2"), ct).ok());
  EXPECT_TRUE(AeadOpen(key, nonce, ToBytes("aad-1"), ct).ok());
}

TEST(Aead, WrongKeyRejected) {
  const Bytes key = SecureRandom(32);
  const Bytes nonce = SecureRandom(12);
  const Bytes ct = AeadSeal(key, nonce, {}, ToBytes("msg"));
  const Bytes other = SecureRandom(32);
  EXPECT_FALSE(AeadOpen(other, nonce, {}, ct).ok());
}

TEST(Aead, TruncatedCiphertextRejected) {
  const Bytes key = SecureRandom(32);
  const Bytes nonce = SecureRandom(12);
  EXPECT_FALSE(AeadOpen(key, nonce, {}, Bytes(5)).ok());
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyString) {
  EXPECT_EQ(HexEncode(Sha256Digest({})),
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HexEncode(Sha256Digest(ToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(HexEncode(Sha256Digest(ToBytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039"
            "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  Bytes digest(kSha256DigestSize);
  h.Finish(digest.data());
  EXPECT_EQ(HexEncode(digest),
            "cdc76e5c9914fb9281a1c7e284d73e67"
            "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = SecureRandom(300);
  Sha256 h;
  h.Update(ByteSpan(msg.data(), 63));
  h.Update(ByteSpan(msg.data() + 63, 65));
  h.Update(ByteSpan(msg.data() + 128, 172));
  Bytes digest(kSha256DigestSize);
  h.Finish(digest.data());
  EXPECT_EQ(digest, Sha256Digest(msg));
}

// ---------------------------------------------------------------- HMAC/HKDF

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256(key, ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b"
            "881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      HexEncode(HmacSha256(ToBytes("Jefe"),
                           ToBytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c7"
      "5a003f089d2739839dec58b964ec3843");
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = FromHex("000102030405060708090a0b0c");
  const Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm =
      Hkdf(ikm, salt, std::string_view(reinterpret_cast<const char*>(
                          info.data()), info.size()), 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, DistinctInfoGivesDistinctKeys) {
  const Bytes ikm = SecureRandom(32);
  const Bytes a = Hkdf(ikm, {}, "context-a", 32);
  const Bytes b = Hkdf(ikm, {}, "context-b", 32);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 32u);
}

TEST(Hkdf, LongOutput) {
  const Bytes okm = Hkdf(ToBytes("ikm"), ToBytes("salt"), "info", 100);
  EXPECT_EQ(okm.size(), 100u);
  // Prefix property: shorter outputs are prefixes of longer ones.
  const Bytes short_okm = Hkdf(ToBytes("ikm"), ToBytes("salt"), "info", 40);
  EXPECT_TRUE(std::equal(short_okm.begin(), short_okm.end(), okm.begin()));
}

// ---------------------------------------------------------------- SipHash

TEST(SipHash, ReferenceVectors) {
  // Reference vectors from the SipHash paper / reference implementation:
  // key = 000102...0f, message = first n bytes of 00 01 02 ...
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  Bytes msg;
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(SipHash24(key, msg), expected[n]) << "n=" << n;
    msg.push_back(static_cast<std::uint8_t>(n));
  }
}

TEST(SipHash, KeyedHashesDiffer) {
  const Bytes k1 = SecureRandom(16);
  const Bytes k2 = SecureRandom(16);
  EXPECT_NE(SipHash24(k1, ToBytes("lightweb")),
            SipHash24(k2, ToBytes("lightweb")));
}

// ---------------------------------------------------------------- X25519

TEST(X25519, Rfc7748Vector1) {
  const Bytes scalar = FromHex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes point = FromHex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  std::uint8_t out[32];
  X25519(scalar.data(), point.data(), out);
  EXPECT_EQ(HexEncode(ByteSpan(out, 32)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748DiffieHellman) {
  const Bytes alice_priv = FromHex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes bob_priv = FromHex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  std::uint8_t alice_pub[32], bob_pub[32];
  X25519BasePoint(alice_priv.data(), alice_pub);
  X25519BasePoint(bob_priv.data(), bob_pub);
  EXPECT_EQ(HexEncode(ByteSpan(alice_pub, 32)),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(HexEncode(ByteSpan(bob_pub, 32)),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const Bytes s1 = X25519SharedSecret(alice_priv, ByteSpan(bob_pub, 32));
  const Bytes s2 = X25519SharedSecret(bob_priv, ByteSpan(alice_pub, 32));
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(HexEncode(s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, Rfc7748IteratedVector) {
  // RFC 7748 §5.2 iterated test: k = u = basepoint; repeat
  // (k, u) <- (X25519(k, u), k). Checked after 1 and 1000 iterations.
  std::uint8_t k[32] = {9};
  std::uint8_t u[32] = {9};
  std::uint8_t out[32];
  X25519(k, u, out);
  EXPECT_EQ(HexEncode(ByteSpan(out, 32)),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
  std::memcpy(u, k, 32);
  std::memcpy(k, out, 32);
  for (int i = 1; i < 1000; ++i) {
    X25519(k, u, out);
    std::memcpy(u, k, 32);
    std::memcpy(k, out, 32);
  }
  EXPECT_EQ(HexEncode(ByteSpan(k, 32)),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

TEST(X25519, GeneratedKeyPairsAgree) {
  const auto a = X25519Generate();
  const auto b = X25519Generate();
  EXPECT_EQ(X25519SharedSecret(a.private_key, b.public_key),
            X25519SharedSecret(b.private_key, a.public_key));
}

// ---------------------------------------------------------------- DPF PRG

TEST(DpfPrg, Deterministic) {
  const DpfPrg& prg = SharedDpfPrg();
  const Bytes seed = SecureRandom(16);
  std::uint8_t l1[16], r1[16], l2[16], r2[16];
  std::uint8_t tl1, tr1, tl2, tr2;
  prg.Expand(seed.data(), l1, r1, &tl1, &tr1);
  prg.Expand(seed.data(), l2, r2, &tl2, &tr2);
  EXPECT_EQ(0, std::memcmp(l1, l2, 16));
  EXPECT_EQ(0, std::memcmp(r1, r2, 16));
  EXPECT_EQ(tl1, tl2);
  EXPECT_EQ(tr1, tr2);
}

TEST(DpfPrg, LeftRightIndependent) {
  const DpfPrg& prg = SharedDpfPrg();
  const Bytes seed = SecureRandom(16);
  std::uint8_t l[16], r[16];
  std::uint8_t tl, tr;
  prg.Expand(seed.data(), l, r, &tl, &tr);
  EXPECT_NE(0, std::memcmp(l, r, 16));
}

TEST(DpfPrg, ControlBitsClearedFromSeeds) {
  const DpfPrg& prg = SharedDpfPrg();
  for (int i = 0; i < 32; ++i) {
    const Bytes seed = SecureRandom(16);
    std::uint8_t l[16], r[16];
    std::uint8_t tl, tr;
    prg.Expand(seed.data(), l, r, &tl, &tr);
    EXPECT_EQ(l[0] & 1, 0);
    EXPECT_EQ(r[0] & 1, 0);
    EXPECT_LE(tl, 1);
    EXPECT_LE(tr, 1);
  }
}

TEST(DpfPrg, BatchMatchesSingle) {
  const DpfPrg& prg = SharedDpfPrg();
  constexpr std::size_t kN = 21;
  const Bytes seeds = SecureRandom(kN * 16);
  Bytes bl(kN * 16), br(kN * 16);
  Bytes btl(kN), btr(kN);
  prg.ExpandBatch(seeds.data(), kN, bl.data(), br.data(), btl.data(),
                  btr.data());
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint8_t l[16], r[16];
    std::uint8_t tl, tr;
    prg.Expand(seeds.data() + i * 16, l, r, &tl, &tr);
    EXPECT_EQ(0, std::memcmp(l, bl.data() + i * 16, 16));
    EXPECT_EQ(0, std::memcmp(r, br.data() + i * 16, 16));
    EXPECT_EQ(tl, btl[i]);
    EXPECT_EQ(tr, btr[i]);
  }
}

TEST(DpfPrg, ControlBitBalance) {
  // Rough statistical sanity: the control bits should be near-uniform.
  const DpfPrg& prg = SharedDpfPrg();
  constexpr std::size_t kN = 4096;
  const Bytes seeds = SecureRandom(kN * 16);
  Bytes l(kN * 16), r(kN * 16), tl(kN), tr(kN);
  prg.ExpandBatch(seeds.data(), kN, l.data(), r.data(), tl.data(), tr.data());
  int ones = 0;
  for (std::size_t i = 0; i < kN; ++i) ones += tl[i] + tr[i];
  EXPECT_GT(ones, static_cast<int>(kN) * 2 * 40 / 100);
  EXPECT_LT(ones, static_cast<int>(kN) * 2 * 60 / 100);
}

}  // namespace
}  // namespace lw::crypto
