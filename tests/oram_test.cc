// Path ORAM and simulated-enclave tests: correctness under heavy access,
// stash behaviour, and — the security-critical part — obliviousness of the
// untrusted-storage access trace.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "oram/enclave.h"
#include "oram/path_oram.h"
#include "oram/storage.h"
#include "util/rand.h"

namespace lw::oram {
namespace {

PathOramConfig SmallConfig(std::uint64_t capacity = 64,
                           std::size_t block_size = 32) {
  PathOramConfig c;
  c.capacity = capacity;
  c.block_size = block_size;
  return c;
}

Bytes BlockOf(std::uint8_t fill, std::size_t size = 32) {
  return Bytes(size, fill);
}

TEST(PathOram, WriteThenRead) {
  const PathOramConfig cfg = SmallConfig();
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  ASSERT_TRUE(oram.Write(5, BlockOf(0xaa)).ok());
  EXPECT_EQ(oram.Read(5).value(), BlockOf(0xaa));
}

TEST(PathOram, ReadUnwrittenIsNotFound) {
  const PathOramConfig cfg = SmallConfig();
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  auto r = oram.Read(7);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PathOram, OverwriteTakesEffect) {
  const PathOramConfig cfg = SmallConfig();
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  ASSERT_TRUE(oram.Write(3, BlockOf(1)).ok());
  ASSERT_TRUE(oram.Write(3, BlockOf(2)).ok());
  EXPECT_EQ(oram.Read(3).value(), BlockOf(2));
}

TEST(PathOram, WriteRejectsWrongBlockSize) {
  const PathOramConfig cfg = SmallConfig();
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  EXPECT_FALSE(oram.Write(0, Bytes(31)).ok());
}

TEST(PathOram, AllBlocksSurviveHeavyTraffic) {
  // Fill the ORAM completely, then hammer it with random reads/writes and
  // verify against a reference map.
  const PathOramConfig cfg = SmallConfig(128, 16);
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  Rng rng(2024);
  std::map<std::uint64_t, Bytes> reference;

  for (std::uint64_t i = 0; i < 128; ++i) {
    Bytes data(16);
    rng.Fill(data);
    ASSERT_TRUE(oram.Write(i, data).ok());
    reference[i] = data;
  }
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t id = rng.UniformInt(128);
    if (rng.UniformInt(2) == 0) {
      Bytes data(16);
      rng.Fill(data);
      ASSERT_TRUE(oram.Write(id, data).ok());
      reference[id] = data;
    } else {
      EXPECT_EQ(oram.Read(id).value(), reference[id]) << "step " << step;
    }
  }
  // Final sweep: every block intact.
  for (std::uint64_t i = 0; i < 128; ++i) {
    EXPECT_EQ(oram.Read(i).value(), reference[i]) << "block " << i;
  }
}

TEST(PathOram, StashStaysBounded) {
  const PathOramConfig cfg = SmallConfig(256, 16);
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  Rng rng(7);
  for (std::uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(oram.Write(i, Bytes(16, static_cast<std::uint8_t>(i))).ok());
  }
  std::size_t max_stash = 0;
  for (int step = 0; step < 1000; ++step) {
    oram.Read(rng.UniformInt(256)).value();
    max_stash = std::max(max_stash, oram.stash_size());
  }
  // Path ORAM theory: stash exceeds ~ζ·log N with negligible probability.
  // 60 is far above any plausible excursion for N=256, Z=4.
  EXPECT_LT(max_stash, 60u);
}

// ----------------------------------------------------------- obliviousness

// Canonical shape of a trace: sequence of (kind, index). Obliviousness for
// Path ORAM means: for EVERY access, the trace is "read one root-to-leaf
// path, then write that same path", with the leaf uniformly random and
// independent of the block accessed.
struct TraceShape {
  std::size_t reads = 0;
  std::size_t writes = 0;
  bool reads_before_writes = true;
};

TraceShape ShapeOf(const std::vector<AccessEvent>& trace) {
  TraceShape s;
  bool seen_write = false;
  for (const AccessEvent& e : trace) {
    if (e.kind == AccessEvent::Kind::kRead) {
      s.reads++;
      if (seen_write) s.reads_before_writes = false;
    } else {
      s.writes++;
      seen_write = true;
    }
  }
  return s;
}

TEST(PathOramObliviousness, TraceShapeIndependentOfBlock) {
  const PathOramConfig cfg = SmallConfig(64, 16);
  MemoryStorage inner(RequiredBucketCount(cfg));
  TracingStorage storage(inner);
  PathOram oram(cfg, storage, SecureRandom(32));
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(oram.Write(i, Bytes(16, 1)).ok());
  }
  storage.ClearTrace();

  // Reads of different blocks, repeated reads of the same block, a miss on
  // an unwritten id, a write, and a dummy: all must produce the same shape.
  std::vector<TraceShape> shapes;
  const auto record = [&](auto&& fn) {
    storage.ClearTrace();
    fn();
    shapes.push_back(ShapeOf(storage.trace()));
  };
  record([&] { oram.Read(0).value(); });
  record([&] { oram.Read(63).value(); });
  record([&] { oram.Read(63).value(); });
  record([&] { (void)oram.Write(5, Bytes(16, 9)); });
  record([&] { oram.DummyAccess(); });

  const std::size_t levels = static_cast<std::size_t>(oram.tree_levels());
  for (const TraceShape& s : shapes) {
    EXPECT_EQ(s.reads, levels);
    EXPECT_EQ(s.writes, levels);
    EXPECT_TRUE(s.reads_before_writes);
  }
}

TEST(PathOramObliviousness, MissLooksLikeHit) {
  PathOramConfig cfg = SmallConfig(64, 16);
  MemoryStorage inner(RequiredBucketCount(cfg));
  TracingStorage storage(inner);
  PathOram oram(cfg, storage, SecureRandom(32));
  ASSERT_TRUE(oram.Write(1, Bytes(16, 1)).ok());

  storage.ClearTrace();
  oram.Read(1).value();
  const TraceShape hit = ShapeOf(storage.trace());

  storage.ClearTrace();
  EXPECT_FALSE(oram.Read(42).ok());  // never written
  const TraceShape miss = ShapeOf(storage.trace());

  EXPECT_EQ(hit.reads, miss.reads);
  EXPECT_EQ(hit.writes, miss.writes);
}

TEST(PathOramObliviousness, RepeatedAccessTouchesFreshRandomPaths) {
  // Re-reading the SAME block must not re-read the same path (that is the
  // whole point of remapping): count distinct leaf-level buckets across
  // many reads of block 0.
  const PathOramConfig cfg = SmallConfig(128, 16);
  MemoryStorage inner(RequiredBucketCount(cfg));
  TracingStorage storage(inner);
  PathOram oram(cfg, storage, SecureRandom(32));
  ASSERT_TRUE(oram.Write(0, Bytes(16, 1)).ok());

  std::set<std::size_t> leaf_buckets;
  const int kReads = 128;
  for (int i = 0; i < kReads; ++i) {
    storage.ClearTrace();
    oram.Read(0).value();
    // The deepest read index in the trace is the leaf bucket of this path.
    std::size_t deepest = 0;
    for (const AccessEvent& e : storage.trace()) {
      if (e.kind == AccessEvent::Kind::kRead) {
        deepest = std::max(deepest, e.index);
      }
    }
    leaf_buckets.insert(deepest);
  }
  // With 128 uniform draws over 128 leaves, expect ~81 distinct values;
  // a fixed path would give 1-2. Require a healthy spread.
  EXPECT_GT(leaf_buckets.size(), 40u);
}

TEST(PathOramObliviousness, BucketCiphertextRerandomized) {
  // Every write-back re-encrypts with a fresh nonce, so even an identical
  // logical state produces different bucket bytes — the host cannot diff
  // contents across accesses. The root bucket is rewritten on every access.
  const PathOramConfig cfg = SmallConfig(16, 16);
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  oram.DummyAccess();
  const Bytes root1 = storage.ReadBucket(0);
  oram.DummyAccess();
  const Bytes root2 = storage.ReadBucket(0);
  EXPECT_FALSE(root1.empty());
  EXPECT_NE(root1, root2);
}

TEST(PathOram, TamperedBucketDegradesToMissNotCrash) {
  // ZLTP gives no integrity guarantee against a malicious host (§2.1
  // non-goals): corrupting storage may lose data but must not crash or
  // return wrong bytes silently authenticated.
  const PathOramConfig cfg = SmallConfig(16, 16);
  MemoryStorage storage(RequiredBucketCount(cfg));
  PathOram oram(cfg, storage, SecureRandom(32));
  ASSERT_TRUE(oram.Write(3, Bytes(16, 0x77)).ok());
  // Corrupt every bucket.
  for (std::size_t b = 0; b < storage.bucket_count(); ++b) {
    Bytes data = storage.ReadBucket(b);
    if (!data.empty()) {
      data[data.size() / 2] ^= 0xff;
      storage.WriteBucket(b, data);
    }
  }
  auto r = oram.Read(3);
  EXPECT_FALSE(r.ok());  // data lost, reported as NOT_FOUND
}

// ----------------------------------------------------------- enclave

class EnclaveTest : public ::testing::Test {
 protected:
  EnclaveTest()
      : inner_(KvEnclave::RequiredStorageBuckets(Config())),
        storage_(inner_),
        enclave_(Config(), storage_) {}

  static EnclaveConfig Config() {
    EnclaveConfig c;
    c.capacity = 128;
    c.value_size = 64;
    return c;
  }

  MemoryStorage inner_;
  TracingStorage storage_;
  KvEnclave enclave_;
};

TEST_F(EnclaveTest, PutThenEncryptedGet) {
  ASSERT_TRUE(enclave_.Put("nytimes.com/africa", ToBytes("headlines!")).ok());

  EnclaveClient client(enclave_.public_key());
  const Bytes request = client.SealGetRequest("nytimes.com/africa");
  auto response = enclave_.HandleEncryptedRequest(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto value = client.OpenResponse(*response);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(ToString(*value), "headlines!");
}

TEST_F(EnclaveTest, MissReportsNotFoundInsideChannelOnly) {
  EnclaveClient client(enclave_.public_key());
  const Bytes request = client.SealGetRequest("missing.example/page");
  auto response = enclave_.HandleEncryptedRequest(request);
  // The HOST sees a normal, successful, fixed-size response...
  ASSERT_TRUE(response.ok());
  // ...only the client learns the key was absent.
  auto value = client.OpenResponse(*response);
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
}

TEST_F(EnclaveTest, HitAndMissResponsesSameSizeAndTraceShape) {
  ASSERT_TRUE(enclave_.Put("present", ToBytes("v")).ok());
  EnclaveClient client(enclave_.public_key());

  storage_.ClearTrace();
  const Bytes req_hit = client.SealGetRequest("present");
  auto resp_hit = enclave_.HandleEncryptedRequest(req_hit);
  ASSERT_TRUE(resp_hit.ok());
  const std::size_t hit_accesses = storage_.trace().size();

  storage_.ClearTrace();
  const Bytes req_miss = client.SealGetRequest("absent");
  auto resp_miss = enclave_.HandleEncryptedRequest(req_miss);
  ASSERT_TRUE(resp_miss.ok());
  const std::size_t miss_accesses = storage_.trace().size();

  EXPECT_EQ(resp_hit->size(), resp_miss->size());
  EXPECT_EQ(hit_accesses, miss_accesses);
}

TEST_F(EnclaveTest, UpdateOverwritesValue) {
  ASSERT_TRUE(enclave_.Put("k", ToBytes("v1")).ok());
  ASSERT_TRUE(enclave_.Put("k", ToBytes("v2-longer")).ok());
  EnclaveClient client(enclave_.public_key());
  auto response = enclave_.HandleEncryptedRequest(client.SealGetRequest("k"));
  EXPECT_EQ(ToString(client.OpenResponse(*response).value()), "v2-longer");
  EXPECT_EQ(enclave_.key_count(), 1u);
}

TEST_F(EnclaveTest, RejectsOversizedValue) {
  EXPECT_FALSE(enclave_.Put("k", Bytes(65, 1)).ok());
}

TEST_F(EnclaveTest, CapacityEnforced) {
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(enclave_.Put("k" + std::to_string(i), ToBytes("v")).ok());
  }
  EXPECT_EQ(enclave_.Put("overflow", ToBytes("v")).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(EnclaveTest, GarbageRequestRejected) {
  EXPECT_FALSE(enclave_.HandleEncryptedRequest(Bytes(10, 0)).ok());
  // Right length, wrong crypto.
  EXPECT_FALSE(enclave_.HandleEncryptedRequest(Bytes(100, 0)).ok());
}

TEST_F(EnclaveTest, RequestForWrongEnclaveRejected) {
  MemoryStorage other_inner(KvEnclave::RequiredStorageBuckets(Config()));
  KvEnclave other(Config(), other_inner);
  EnclaveClient client(other.public_key());  // keyed to the other enclave
  const Bytes request = client.SealGetRequest("k");
  EXPECT_FALSE(enclave_.HandleEncryptedRequest(request).ok());
}

TEST_F(EnclaveTest, ManyKeysRoundTrip) {
  EnclaveClient client(enclave_.public_key());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        enclave_.Put("key/" + std::to_string(i), ToBytes("value-" +
            std::to_string(i))).ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto response = enclave_.HandleEncryptedRequest(
        client.SealGetRequest("key/" + std::to_string(i)));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(ToString(client.OpenResponse(*response).value()),
              "value-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace lw::oram
