// Property-style parameterized sweeps across the system's tunables:
// Path ORAM geometries, DPF key-privacy statistics, record-size sweeps,
// and a browser random-walk invariant check.
#include <gtest/gtest.h>

#include <map>

#include "dpf/dpf.h"
#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"
#include "oram/path_oram.h"
#include "oram/storage.h"
#include "pir/blob_db.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "stats/private_stats.h"
#include "util/rand.h"

namespace lw {
namespace {

// ----------------------------------------------- ORAM geometry sweep

class OramGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OramGeometryTest, CorrectUnderMixedTraffic) {
  const auto [capacity_log2, bucket_capacity] = GetParam();
  const std::uint64_t capacity = std::uint64_t{1} << capacity_log2;
  oram::PathOramConfig config;
  config.capacity = capacity;
  config.block_size = 24;
  config.bucket_capacity = bucket_capacity;
  oram::MemoryStorage storage(oram::RequiredBucketCount(config));
  oram::PathOram oram(config, storage, SecureRandom(32));

  Rng rng(capacity * 31 + static_cast<std::uint64_t>(bucket_capacity));
  std::map<std::uint64_t, Bytes> reference;
  for (int step = 0; step < 600; ++step) {
    const std::uint64_t id = rng.UniformInt(capacity);
    switch (rng.UniformInt(3)) {
      case 0: {
        Bytes data(24);
        rng.Fill(data);
        ASSERT_TRUE(oram.Write(id, data).ok());
        reference[id] = data;
        break;
      }
      case 1: {
        auto got = oram.Read(id);
        if (reference.contains(id)) {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, reference[id]);
        } else {
          EXPECT_FALSE(got.ok());
        }
        break;
      }
      default:
        oram.DummyAccess();
    }
  }
  // Stash does not blow up for any geometry (Z>=2).
  EXPECT_LT(oram.stash_size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OramGeometryTest,
    ::testing::Values(std::tuple{4, 4}, std::tuple{6, 4}, std::tuple{8, 4},
                      std::tuple{6, 2}, std::tuple{6, 6},
                      std::tuple{10, 4}));

// ---------------------------------------------- DPF key-privacy stats

TEST(DpfPrivacy, KeyBytesStatisticallyIndependentOfAlpha) {
  // A single party's key must look like random bytes whatever alpha is:
  // compare the average byte value of serialized keys across two very
  // different alphas — they must agree within noise, and both sit near
  // 127.5. (A structural leak, e.g. alpha bits copied into the key, would
  // shift these distributions.)
  const int d = 16;
  constexpr int kSamples = 200;
  const auto mean_byte = [&](std::uint64_t alpha) {
    double total = 0;
    std::size_t count = 0;
    for (int i = 0; i < kSamples; ++i) {
      const Bytes wire = dpf::Generate(alpha, d).key0.Serialize();
      // Consider only the pseudorandom material: skip the 2-byte header
      // (party/domain are public) and each level's packed control-bit byte
      // (a 2-bit value; layout: header, root seed, then 17 bytes per level
      // whose last byte holds the control bits).
      for (std::size_t j = 2; j < wire.size(); ++j) {
        if (j >= 18 && (j - 18) % 17 == 16) continue;
        total += wire[j];
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  const double mean_zero = mean_byte(0);
  const double mean_max = mean_byte((1u << 16) - 1);
  EXPECT_NEAR(mean_zero, 127.5, 4.0);
  EXPECT_NEAR(mean_max, 127.5, 4.0);
  EXPECT_NEAR(mean_zero, mean_max, 6.0);
}

TEST(DpfPrivacy, SharesOfDifferentAlphasHaveSameSize) {
  for (int d : {8, 12, 16, 22}) {
    const std::size_t size0 = dpf::Generate(0, d).key0.SerializedSize();
    const std::size_t size1 =
        dpf::Generate((std::uint64_t{1} << d) - 1, d).key1.SerializedSize();
    EXPECT_EQ(size0, size1) << d;
  }
}

// ---------------------------------------------- record-size sweep

class RecordSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecordSizeTest, PirRoundTripsAtOddSizes) {
  const std::size_t record_size = GetParam();
  const int d = 8;
  pir::BlobDatabase db(d, record_size);
  Rng rng(record_size);
  Bytes rec(record_size);
  rng.Fill(rec);
  ASSERT_TRUE(db.Insert(77, rec).ok());

  const pir::QueryKeys q = pir::MakeIndexQuery(77, d);
  Bytes a0(record_size), a1(record_size);
  db.Answer(dpf::EvalFull(q.key0), a0);
  db.Answer(dpf::EvalFull(q.key1), a1);
  EXPECT_EQ(pir::CombineAnswers(a0, a1).value(), rec);
}

TEST_P(RecordSizeTest, PackingFillsExactly) {
  const std::size_t record_size = GetParam();
  if (record_size < pir::kRecordHeaderSize) {
    EXPECT_FALSE(pir::PackRecord(1, {}, record_size).ok());
    return;
  }
  const Bytes payload(pir::MaxPayloadSize(record_size), 0xab);
  auto rec = pir::PackRecord(9, payload, record_size);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), record_size);
  EXPECT_EQ(pir::UnpackRecord(*rec)->payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RecordSizeTest,
                         ::testing::Values(1, 12, 13, 31, 100, 999, 4096));

// ---------------------------------------------- browser random walk

TEST(BrowserWalk, LinkWalkNeverBreaksTrafficInvariant) {
  using namespace lightweb;
  UniverseConfig config;
  config.name = "walk";
  config.code_domain_bits = 10;
  config.code_blob_size = 4096;
  config.data_domain_bits = 14;
  config.data_blob_size = 512;
  config.fetches_per_page = 2;
  config.master_seed = Bytes(16, 0x61);
  Universe universe(config);

  // A ring of pages, each linking to the next and to a random other page.
  Publisher pub("walker");
  SiteBuilder site("ring.example");
  site.AddRoute("/node/:n", {"ring.example/data/{n}.json"},
                "node {{n}} [next]({{data0.next}}) [jump]({{data0.jump}})");
  ASSERT_TRUE(pub.PublishSite(universe, site).ok());
  Rng rng(5);
  constexpr int kNodes = 30;
  for (int n = 0; n < kNodes; ++n) {
    json::Object blob;
    blob["next"] =
        "ring.example/node/" + std::to_string((n + 1) % kNodes);
    blob["jump"] = "ring.example/node/" +
                   std::to_string(rng.UniformInt(kNodes));
    ASSERT_TRUE(pub.PublishData(universe,
                                "ring.example/data/" + std::to_string(n) +
                                    ".json",
                                json::Value(blob))
                    .ok());
  }

  BrowserConfig bconfig;
  bconfig.fetches_per_page = universe.fetches_per_page();
  Browser browser(
      std::make_unique<InProcessPirChannel>(universe.code_store()),
      std::make_unique<InProcessPirChannel>(universe.data_store()),
      bconfig);

  std::string path = "ring.example/node/0";
  for (int hop = 0; hop < 50; ++hop) {
    auto page = browser.Visit(path);
    ASSERT_TRUE(page.ok()) << path;
    ASSERT_FALSE(page->links.empty()) << path;
    // Follow a random link.
    path = page->links[rng.UniformInt(page->links.size())].target;
  }
  EXPECT_EQ(browser.data_channel().observed_queries(),
            50u * static_cast<std::uint64_t>(universe.fetches_per_page()));
  EXPECT_EQ(browser.code_channel().observed_queries(), 1u);  // one domain
}

// ---------------------------------------------- stats wraparound

TEST(StatsProperty, LargeCountsDoNotOverflowVisibly) {
  // Counts live in Z_2^64; verify many reports accumulate exactly.
  stats::AggregationServer s0(2), s1(2);
  for (int i = 0; i < 10000; ++i) {
    const auto r = stats::SplitIndicator(2, i % 2);
    ASSERT_TRUE(s0.Accept(r.for_server0).ok());
    ASSERT_TRUE(s1.Accept(r.for_server1).ok());
  }
  const auto combined =
      stats::CombineTotals(s0.totals(), s1.totals()).value();
  EXPECT_EQ(combined[0], 5000u);
  EXPECT_EQ(combined[1], 5000u);
}

}  // namespace
}  // namespace lw
