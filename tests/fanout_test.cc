// Fault-injection tests for the multiplexed shard fan-out.
//
// The fan-out is the front-end's client path: many private GETs pipeline
// across every shard link at once, correlated by request id. These tests
// drive its failure modes with the net/faulty.h decorators and scripted
// shard stubs: a dead shard must fail fast with DEADLINE_EXCEEDED (never
// wedge the front-end), a one-shot shard error must not poison subsequent
// requests, a send failure on one shard must fail only that op while the
// replies other shards still owe it are dropped by id — never
// misattributed — and concurrent ops against slow shards must overlap
// instead of serializing (the bug the old lock-step fan-out had). The
// whole suite runs under the sanitizer legs like every other test binary,
// including TSan (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "net/faulty.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "pir/blob_db.h"
#include "pir/two_server.h"
#include "util/clock.h"
#include "zltp/frontend.h"
#include "zltp/messages.h"

namespace lw::zltp {
namespace {

using std::chrono::milliseconds;

// Sanitizer instrumentation inflates wall-clock overhead by a large
// constant factor; scale the overlap test's injected delays with it so the
// fixed per-operation overhead stays small next to the timing bounds.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kTimeScale = 4;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kTimeScale = 4;
#else
constexpr int kTimeScale = 1;
#endif
#else
constexpr int kTimeScale = 1;
#endif

ShardTopology TwoShardTopology() {
  ShardTopology t;
  t.domain_bits = 10;
  t.top_bits = 1;  // 2 shards
  t.record_size = 64;
  return t;
}

// Spins (real time) until `pred` holds; fan-out completions arrive from
// link reader threads, so cross-thread observation needs a bounded wait.
bool WaitUntil(const std::function<bool()>& pred,
               milliseconds budget = std::chrono::seconds(10)) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// Two shard data servers with some content plus a reference unsharded DB,
// so every test can check fan-out answers for correctness, not just codes.
struct TwoShards {
  ShardTopology topology = TwoShardTopology();
  std::vector<std::unique_ptr<ShardDataServer>> shards;
  pir::BlobDatabase reference;

  TwoShards() : reference(topology.domain_bits, topology.record_size) {
    for (std::size_t s = 0; s < topology.shard_count(); ++s) {
      shards.push_back(std::make_unique<ShardDataServer>(topology, s));
    }
    for (std::uint64_t i = 0; i < 32; ++i) {
      Bytes record(topology.record_size,
                   static_cast<std::uint8_t>(0x30 + i));
      const std::size_t shard = i & (topology.shard_count() - 1);
      EXPECT_TRUE(shards[shard]->Load(i, record).ok());
      EXPECT_TRUE(reference.Upsert(i, record).ok());
    }
  }

  // A served in-memory link to shard `s`.
  std::unique_ptr<net::Transport> ServedLink(std::size_t s) {
    net::TransportPair pair = net::CreateInMemoryPair();
    shards[s]->ServeConnectionDetached(std::move(pair.b));
    return std::move(pair.a);
  }

  // A factory dialing fresh served links to shard `s` (the redial path).
  net::TransportFactory RedialFactory(std::size_t s) {
    return [this, s]() -> Result<std::unique_ptr<net::Transport>> {
      return ServedLink(s);
    };
  }

  Bytes DirectAnswer(const dpf::DpfKey& key) {
    Bytes out(topology.record_size);
    reference.Answer(dpf::EvalFull(key), out);
    return out;
  }
};

TEST(Fanout, DeadShardFailsFastWithDeadlineExceeded) {
  TwoShards deployment;
  FakeClock clock;
  FanoutOptions options;
  options.op_timeout = milliseconds(100);
  options.clock = &clock;

  // Shard 0 answers; shard 1 is dead — its peer end is held but never
  // served, so the link accepts the sub-query and then says nothing.
  std::vector<std::unique_ptr<net::Transport>> links;
  links.push_back(deployment.ServedLink(0));
  net::TransportPair dead = net::CreateInMemoryPair();
  links.push_back(std::move(dead.a));

  ShardFanout fanout(deployment.topology, std::move(links),
                     std::move(options));
  const pir::QueryKeys q =
      pir::MakeIndexQuery(3, deployment.topology.domain_bits);

  std::promise<Result<Bytes>> done;
  auto result = done.get_future();
  fanout.AnswerAsync(q.key0,
                     [&done](Result<Bytes> r) { done.set_value(std::move(r)); });

  // Virtual time passes the op deadline; the expiry sweeper (short real
  // slices under a FakeClock) must fail the op without any shard 1 reply.
  clock.Advance(milliseconds(200));
  ASSERT_EQ(result.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "dead shard wedged the fan-out";
  const Result<Bytes> answer = result.get();
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded)
      << answer.status().ToString();
}

TEST(Fanout, ConcurrentAnswersOverlapAcrossSlowShards) {
  TwoShards deployment;
  // Both shards are slow: every reply costs one delay of real time. Two
  // concurrent GETs on the old lock-step path would serialize — four
  // delayed receives, >= 4 delays. The multiplexed path pipelines both ops
  // onto both links at once, so each link's reader pays 2 delays and the
  // pair completes in ~2 delays.
  const milliseconds delay{50 * kTimeScale};
  std::vector<std::unique_ptr<net::Transport>> links;
  for (std::size_t s = 0; s < deployment.topology.shard_count(); ++s) {
    links.push_back(std::make_unique<net::DelayTransport>(
        deployment.ServedLink(s), delay));
  }
  ShardFanout fanout(deployment.topology, std::move(links));

  const pir::QueryKeys q0 =
      pir::MakeIndexQuery(5, deployment.topology.domain_bits);
  const pir::QueryKeys q1 =
      pir::MakeIndexQuery(9, deployment.topology.domain_bits);

  Result<Bytes> a0 = UnavailableError("unset");
  Result<Bytes> a1 = UnavailableError("unset");
  const auto start = std::chrono::steady_clock::now();
  std::thread t0([&] { a0 = fanout.Answer(q0.key0); });
  std::thread t1([&] { a1 = fanout.Answer(q1.key0); });
  t0.join();
  t1.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(a0.ok()) << a0.status().ToString();
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_EQ(*a0, deployment.DirectAnswer(q0.key0));
  EXPECT_EQ(*a1, deployment.DirectAnswer(q1.key0));
  // Well under the 4-delay serial bound (and comfortably over one delay,
  // so the delays really ran). The margin absorbs CI scheduling noise.
  EXPECT_LT(elapsed, delay * 7 / 2) << "fan-out serialized";
  EXPECT_GE(elapsed, delay * 2 - milliseconds(5));
}

TEST(Fanout, OneShotShardErrorDoesNotPoisonSubsequentRequests) {
  TwoShards deployment;
  // Shard 1 is scripted: it answers the first sub-query with an ErrorMsg.
  // Error frames carry no request id (messages.h), so the stream loses
  // its correlation and the fan-out must close the link and redial — not
  // resynchronize a stream it no longer trusts.
  net::TransportPair scripted = net::CreateInMemoryPair();
  std::thread shard1([peer = std::move(scripted.b)] {
    auto request = peer->Receive();
    ASSERT_TRUE(request.ok());
    ErrorMsg e;
    e.code = StatusCode::kInternal;
    e.message = "injected shard fault";
    (void)peer->Send(Encode(e));
    // The fan-out closes this link; drain until it does.
    while (peer->Receive().ok()) {
    }
  });

  FanoutOptions options;
  options.redial = {deployment.RedialFactory(0), deployment.RedialFactory(1)};
  std::vector<std::unique_ptr<net::Transport>> links;
  links.push_back(deployment.ServedLink(0));
  links.push_back(std::move(scripted.a));
  ShardFanout fanout(deployment.topology, std::move(links),
                     std::move(options));

  const pir::QueryKeys q =
      pir::MakeIndexQuery(7, deployment.topology.domain_bits);
  const Result<Bytes> poisoned = fanout.Answer(q.key0);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInternal)
      << poisoned.status().ToString();

  // The next request rides the redialed link and must be correct — the
  // regression the old fan-out failed: a one-shot error left the link
  // desynced and every later request read the wrong reply.
  const Result<Bytes> after = fanout.Answer(q.key1);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, deployment.DirectAnswer(q.key1));
  shard1.join();
}

TEST(Fanout, SendFailureOnOneShardFailsOpAndLateRepliesDrop) {
  TwoShards deployment;
  // Shard 1's link dies on its first send (the Dying decorator's budget is
  // consumed by the fan-out reader's eager receive plus this op's send):
  // the op must fail immediately even though shard 0 already owes it a
  // reply — and that reply must be stale-dropped, not left in the pipe to
  // poison the next request (the old fan-out returned early from shard k's
  // send failure with shards 0..k-1 still owing replies).
  FanoutOptions options;
  options.redial = {deployment.RedialFactory(0), deployment.RedialFactory(1)};
  std::vector<std::unique_ptr<net::Transport>> links;
  links.push_back(deployment.ServedLink(0));
  links.push_back(std::make_unique<net::DyingTransport>(
      deployment.ServedLink(1), /*ops_before_death=*/1));
  ShardFanout fanout(deployment.topology, std::move(links),
                     std::move(options));

  const pir::QueryKeys q =
      pir::MakeIndexQuery(11, deployment.topology.domain_bits);
  const Result<Bytes> hit = fanout.Answer(q.key0);
  ASSERT_FALSE(hit.ok());
  EXPECT_EQ(hit.status().code(), StatusCode::kUnavailable)
      << hit.status().ToString();

  // After the redial, the fan-out answers correctly again. Shard 0's
  // orphaned reply to the failed op either matched it before the failure
  // or was stale-dropped by id afterwards — in neither case does it leak
  // into this request (which would corrupt the XOR below).
  const Result<Bytes> after = fanout.Answer(q.key1);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, deployment.DirectAnswer(q.key1));
}

TEST(Fanout, FlakyShardLinkRecoversViaRedial) {
  TwoShards deployment;
  FanoutOptions options;
  options.redial = {deployment.RedialFactory(0), deployment.RedialFactory(1)};
  std::vector<std::unique_ptr<net::Transport>> links;
  links.push_back(deployment.ServedLink(0));
  links.push_back(std::make_unique<net::FlakyTransport>(
      deployment.ServedLink(1), /*failures=*/2));
  ShardFanout fanout(deployment.topology, std::move(links),
                     std::move(options));

  // The blips race the reader thread, so which op eats them is timing
  // dependent — but within a few attempts the link must have redialed and
  // answers must be correct again.
  const pir::QueryKeys q =
      pir::MakeIndexQuery(13, deployment.topology.domain_bits);
  Result<Bytes> answer = UnavailableError("unset");
  for (int attempt = 0; attempt < 5 && !answer.ok(); ++attempt) {
    answer = fanout.Answer(q.key0);
  }
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(*answer, deployment.DirectAnswer(q.key0));
}

TEST(Fanout, LateReplyIsDroppedNeverMisattributed) {
  TwoShards deployment;
  FakeClock clock;
  FanoutOptions options;
  options.op_timeout = milliseconds(50);
  options.clock = &clock;

  // Shard 1 is scripted: it holds the first reply until told, long past
  // the op deadline, then delivers it — correct bytes, hopelessly late —
  // and serves every later sub-query properly.
  net::TransportPair scripted = net::CreateInMemoryPair();
  std::promise<void> release_late;
  std::future<void> released = release_late.get_future();
  ShardDataServer* shard1_server = deployment.shards[1].get();
  std::thread shard1([peer = std::move(scripted.b), &released,
                      shard1_server] {
    auto serve_one = [&](const net::Frame& f) {
      auto request = DecodeGetRequest(f);
      ASSERT_TRUE(request.ok());
      auto key = dpf::SubtreeKey::Deserialize(request->body);
      ASSERT_TRUE(key.ok());
      auto answer = shard1_server->Answer(*key);
      ASSERT_TRUE(answer.ok());
      GetResponse response;
      response.request_id = request->request_id;
      response.body = std::move(*answer);
      (void)peer->Send(Encode(response));
    };
    auto first = peer->Receive();
    ASSERT_TRUE(first.ok());
    // Bounded wait so a failing test tears down instead of deadlocking.
    if (released.wait_for(std::chrono::seconds(60)) !=
        std::future_status::ready) {
      return;
    }
    serve_one(*first);  // the late reply
    for (;;) {
      auto next = peer->Receive();
      if (!next.ok()) return;  // fan-out shut down
      serve_one(*next);
    }
  });

  {
    // Inner scope: the fan-out's destructor closes the scripted link,
    // which is what lets the stub's serve loop (and the join below) end.
    std::vector<std::unique_ptr<net::Transport>> links;
    links.push_back(deployment.ServedLink(0));
    links.push_back(std::move(scripted.a));
    ShardFanout fanout(deployment.topology, std::move(links),
                       std::move(options));

    const pir::QueryKeys q =
        pir::MakeIndexQuery(17, deployment.topology.domain_bits);
    std::promise<Result<Bytes>> done;
    auto result = done.get_future();
    fanout.AnswerAsync(
        q.key0, [&done](Result<Bytes> r) { done.set_value(std::move(r)); });
    clock.Advance(milliseconds(100));
    ASSERT_EQ(result.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_EQ(result.get().status().code(), StatusCode::kDeadlineExceeded);

    // Now the stale reply arrives. Correlation by id must drop it — if it
    // were handed to the next op, that op's XOR would combine shard 1's
    // answer for the WRONG query and the bytes below would differ.
    const std::uint64_t drops_before = obs::M().fanout_stale_drops.Value();
    release_late.set_value();
    ASSERT_TRUE(WaitUntil([&] {
      return obs::M().fanout_stale_drops.Value() > drops_before;
    })) << "late reply was not dropped";

    const Result<Bytes> after = fanout.Answer(q.key1);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(*after, deployment.DirectAnswer(q.key1));
  }
  shard1.join();
}

TEST(Fanout, ReactorLinksMatchThreadedLinksOverTcp) {
  // The reply-equivalence check across serving models: the same deployment
  // answered through thread-per-link transports and through reactor
  // outbound connections must produce byte-identical record shares.
  TwoShards deployment;
  net::Reactor reactor;
  std::vector<ShardFanout::ShardAddr> addrs;
  for (auto& shard : deployment.shards) {
    auto listener = net::TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    addrs.push_back({"127.0.0.1", listener->bound_port()});
    ASSERT_TRUE(shard->ServeOnReactor(reactor, std::move(*listener)).ok());
  }
  ASSERT_TRUE(reactor.Start().ok());
  {
    auto reactor_fanout = ShardFanout::ConnectOnReactor(
        deployment.topology, reactor, addrs);
    ASSERT_TRUE(reactor_fanout.ok()) << reactor_fanout.status().ToString();

    std::vector<std::unique_ptr<net::Transport>> links;
    for (std::size_t s = 0; s < deployment.topology.shard_count(); ++s) {
      links.push_back(deployment.ServedLink(s));
    }
    ShardFanout threaded_fanout(deployment.topology, std::move(links));

    for (std::uint64_t target = 0; target < 8; ++target) {
      const pir::QueryKeys q =
          pir::MakeIndexQuery(target, deployment.topology.domain_bits);
      const Result<Bytes> via_reactor = reactor_fanout->Answer(q.key0);
      const Result<Bytes> via_threads = threaded_fanout.Answer(q.key0);
      ASSERT_TRUE(via_reactor.ok()) << via_reactor.status().ToString();
      ASSERT_TRUE(via_threads.ok()) << via_threads.status().ToString();
      EXPECT_EQ(*via_reactor, *via_threads) << "target " << target;
      EXPECT_EQ(*via_reactor, deployment.DirectAnswer(q.key0));
    }
    // Documented teardown order: stop the reactor first, then destroy the
    // fan-out (scope end), then the reactor object.
    reactor.Stop();
  }
}

TEST(Fanout, ReactorFanoutFailsPendingOpsOnReactorStop) {
  // Stopping the reactor mid-flight must complete pending ops with an
  // error (the outbound conns' on_close path), not leave callers hanging.
  TwoShards deployment;
  net::Reactor reactor;
  // One real listener whose connection never answers: accept via reactor
  // with a swallow-everything handler.
  auto listener = net::TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener->bound_port();
  net::Reactor::Handler swallow;
  swallow.on_frame = [](net::Reactor::ConnId, net::Frame) {};
  ASSERT_TRUE(
      reactor.AddListener(std::move(*listener), std::move(swallow)).ok());
  ASSERT_TRUE(reactor.Start().ok());
  {
    FanoutOptions options;
    options.op_timeout = milliseconds(0);  // no deadline: only Stop() ends it
    auto fanout = ShardFanout::ConnectOnReactor(
        deployment.topology, reactor,
        {{"127.0.0.1", port}, {"127.0.0.1", port}}, std::move(options));
    ASSERT_TRUE(fanout.ok()) << fanout.status().ToString();

    const pir::QueryKeys q =
        pir::MakeIndexQuery(1, deployment.topology.domain_bits);
    std::promise<Result<Bytes>> done;
    auto result = done.get_future();
    fanout->AnswerAsync(q.key0, [&done](Result<Bytes> r) {
      done.set_value(std::move(r));
    });
    reactor.Stop();
    ASSERT_EQ(result.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "reactor stop left the op pending";
    EXPECT_FALSE(result.get().ok());
  }
}

}  // namespace
}  // namespace lw::zltp
