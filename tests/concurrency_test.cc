// Concurrency stress: a CDN serves private GETs while publishers push
// updates, many clients share one batching server, and per-connection
// pipelining runs alongside connection churn. These tests exist to fail
// under TSan/race conditions rather than to check new functionality.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lightweb/channel.h"
#include "net/transport.h"
#include "pir/two_server.h"
#include "util/file.h"
#include "util/rand.h"
#include "util/thread_pool.h"
#include "zltp/batch.h"
#include "zltp/client.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw {
namespace {

zltp::PirStoreConfig StoreConfig() {
  zltp::PirStoreConfig c;
  c.domain_bits = 12;
  c.record_size = 128;
  c.keyword_seed = Bytes(16, 0x44);
  return c;
}

TEST(Concurrency, QueriesDuringPublishChurn) {
  zltp::PirStore store(StoreConfig());
  for (int i = 0; i < 50; ++i) {
    (void)store.Publish("stable/" + std::to_string(i), ToBytes("v"));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> publish_errors{0};
  std::thread publisher([&] {
    // Continuous updates + new pages + removals while readers query.
    int round = 0;
    while (!stop.load()) {
      const std::string key = "churn/" + std::to_string(round % 20);
      if (store.Contains(key)) {
        if (!store.Unpublish(key).ok()) ++publish_errors;
      } else {
        const Status s =
            store.Publish(key, ToBytes("r" + std::to_string(round)));
        if (!s.ok() && s.code() != StatusCode::kCollision) {
          ++publish_errors;
        }
      }
      ++round;
    }
  });

  std::atomic<int> query_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<std::uint64_t>(r));
      for (int i = 0; i < 200; ++i) {
        // Stable keys must ALWAYS reconstruct correctly despite concurrent
        // publishes elsewhere in the store.
        const std::string key =
            "stable/" + std::to_string(rng.UniformInt(50));
        const std::uint64_t index = store.mapper().IndexOf(key);
        const pir::QueryKeys q =
            pir::MakeIndexQuery(index, store.domain_bits());
        auto a0 = store.AnswerQuery(q.key0);
        auto a1 = store.AnswerQuery(q.key1);
        if (!a0.ok() || !a1.ok()) {
          ++query_errors;
          continue;
        }
        auto rec = pir::CombineAnswers(*a0, *a1);
        if (!rec.ok()) ++query_errors;
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  publisher.join();
  EXPECT_EQ(query_errors.load(), 0);
  EXPECT_EQ(publish_errors.load(), 0);
}

TEST(Concurrency, ManyClientsOneBatchingServer) {
  zltp::PirStore store(StoreConfig());
  std::vector<std::string> keys;
  for (int i = 0; i < 30; ++i) {
    const std::string key = "page/" + std::to_string(i);
    if (store.Publish(key, ToBytes("content-" + std::to_string(i))).ok()) {
      keys.push_back(key);
    }
  }
  zltp::BatchConfig batch_config;
  batch_config.max_batch = 8;
  batch_config.max_wait = std::chrono::milliseconds(5);
  zltp::ZltpPirServer server0(store, 0, batch_config);
  zltp::ZltpPirServer server1(store, 1, batch_config);

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    net::TransportPair p0 = net::CreateInMemoryPair();
    net::TransportPair p1 = net::CreateInMemoryPair();
    server0.ServeConnectionDetached(std::move(p0.b));
    server1.ServeConnectionDetached(std::move(p1.b));
    clients.emplace_back(
        [&, c, t0 = std::move(p0.a), t1 = std::move(p1.a)]() mutable {
          auto session =
              zltp::PirSession::Establish(
                  zltp::EstablishOptions::FromTransports(
      std::move(t0), std::move(t1)));
          if (!session.ok()) {
            ++failures;
            return;
          }
          Rng rng(static_cast<std::uint64_t>(c) + 77);
          for (int i = 0; i < 15; ++i) {
            const std::string& key = keys[rng.UniformInt(keys.size())];
            auto value = session->PrivateGet(key);
            if (!value.ok() ||
                ToString(*value) !=
                    "content-" + key.substr(std::string("page/").size())) {
              ++failures;
            }
          }
          session->Close();
        });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The concurrent clients must actually have shared scans.
  EXPECT_GT(server0.batch_stats().average_batch_size(), 1.0);
}

TEST(Concurrency, PipelinedBatchesFromParallelClients) {
  zltp::PirStore store(StoreConfig());
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) {
    const std::string key = "b/" + std::to_string(i);
    if (store.Publish(key, ToBytes("v" + std::to_string(i))).ok()) {
      keys.push_back(key);
    }
  }
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    net::TransportPair p0 = net::CreateInMemoryPair();
    net::TransportPair p1 = net::CreateInMemoryPair();
    server0.ServeConnectionDetached(std::move(p0.b));
    server1.ServeConnectionDetached(std::move(p1.b));
    clients.emplace_back(
        [&, t0 = std::move(p0.a), t1 = std::move(p1.a)]() mutable {
          auto session =
              zltp::PirSession::Establish(
                  zltp::EstablishOptions::FromTransports(
      std::move(t0), std::move(t1)));
          if (!session.ok()) {
            ++failures;
            return;
          }
          for (int round = 0; round < 5; ++round) {
            auto batch = session->PrivateGetBatch(keys, /*extra_dummies=*/2);
            if (!batch.ok()) {
              ++failures;
              continue;
            }
            for (std::size_t i = 0; i < keys.size(); ++i) {
              if (!(*batch)[i].ok()) ++failures;
            }
          }
          session->Close();
        });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, PipelinedExpandScanOverlapIsRaceFree) {
  // Drives the two-stage batch pipeline hard enough that expansion of batch
  // N+1 genuinely overlaps the scan of batch N (tiny co-rider window, more
  // clients than max_batch), with a sharded store and a shared ThreadPool so
  // both stages fan work out to the same workers, plus a stats() poller on
  // the side. Exists to fail under TSan if the staging handoff, the EWMA
  // update, or the stats snapshot ever race.
  zltp::PirStoreConfig config = StoreConfig();
  config.shard_top_bits = 2;
  zltp::PirStore store(config);
  for (int i = 0; i < 40; ++i) {
    (void)store.Publish("p/" + std::to_string(i), ToBytes("v"));
  }
  ThreadPool pool(2);
  zltp::BatchConfig batch_config;
  batch_config.max_batch = 4;
  batch_config.max_wait = std::chrono::milliseconds(1);
  batch_config.pipelined = true;
  zltp::BatchScheduler batcher(store, batch_config, &pool);

  std::atomic<bool> stop_polling{false};
  std::thread poller([&] {
    // Concurrent stats reads must always see a consistent snapshot.
    while (!stop_polling.load()) {
      const auto s = batcher.stats();
      if (s.batches > 0 && s.requests < s.batches) {
        ADD_FAILURE() << "torn stats snapshot";
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kClients = 6;
  constexpr int kPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 123);
      for (int i = 0; i < kPerClient; ++i) {
        const pir::QueryKeys q = pir::MakeIndexQuery(
            rng.UniformInt(std::uint64_t{1} << store.domain_bits()),
            store.domain_bits());
        auto answer = batcher.Submit(q.key0);
        if (!answer.ok() ||
            *answer != store.AnswerQuery(q.key0).value()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop_polling.store(true);
  poller.join();
  batcher.Stop();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(stats.batches, 1u);
}

TEST(Concurrency, InProcessChannelsAreIndependent) {
  // Distinct browsers (each with its own channel) may run in parallel
  // against one universe store.
  zltp::PirStore store(StoreConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      lightweb::InProcessPirChannel channel(store);
      for (int i = 0; i < 50; ++i) {
        auto v = channel.PrivateGet("k");
        if (!v.ok() || ToString(*v) != "v") ++failures;
        if (!channel.DummyGet().ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(FileIo, RoundTripAndErrors) {
  const std::string path = "/tmp/lw_file_test.bin";
  const Bytes data = SecureRandom(1000);
  ASSERT_TRUE(WriteFile(path, data).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToBytes(*read), data);
  EXPECT_FALSE(ReadFileToString("/no/such/dir/file").ok());
  EXPECT_FALSE(WriteFile("/no/such/dir/file", data).ok());
  // Empty file round trip.
  ASSERT_TRUE(WriteFile(path, {}).ok());
  EXPECT_TRUE(ReadFileToString(path)->empty());
}

}  // namespace
}  // namespace lw
