// DPF tests: correctness over full domains, point/full-eval agreement,
// sharded (distributed) evaluation, serialization, and key-privacy
// structure. Parameterized sweeps cover domain sizes 1..14 bits.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "dpf/dpf.h"
#include "util/rand.h"
#include "util/thread_pool.h"

namespace lw::dpf {
namespace {

// XOR of both parties' bits at x must be the point-function value.
void ExpectPointFunction(const KeyPair& pair, std::uint64_t alpha,
                         std::uint64_t domain) {
  for (std::uint64_t x = 0; x < domain; ++x) {
    const std::uint8_t v =
        EvalPoint(pair.key0, x) ^ EvalPoint(pair.key1, x);
    EXPECT_EQ(v, x == alpha ? 1 : 0) << "x=" << x << " alpha=" << alpha;
  }
}

TEST(Dpf, TinyDomainExhaustive) {
  // Every alpha in a 3-bit domain, every point checked.
  for (std::uint64_t alpha = 0; alpha < 8; ++alpha) {
    ExpectPointFunction(Generate(alpha, 3), alpha, 8);
  }
}

TEST(Dpf, SingleBitDomain) {
  for (std::uint64_t alpha = 0; alpha < 2; ++alpha) {
    ExpectPointFunction(Generate(alpha, 1), alpha, 2);
  }
}

class DpfDomainTest : public ::testing::TestWithParam<int> {};

TEST_P(DpfDomainTest, FullEvalXorIsPointFunction) {
  const int d = GetParam();
  const std::uint64_t domain = std::uint64_t{1} << d;
  Rng rng(static_cast<std::uint64_t>(d) * 7919);
  const std::uint64_t alpha = rng.UniformInt(domain);

  const KeyPair pair = Generate(alpha, d);
  const BitVector b0 = EvalFull(pair.key0);
  const BitVector b1 = EvalFull(pair.key1);
  ASSERT_EQ(b0.size(), (domain + 63) / 64);

  std::uint64_t ones = 0;
  for (std::uint64_t x = 0; x < domain; ++x) {
    const std::uint8_t v = GetBit(b0, x) ^ GetBit(b1, x);
    if (v) {
      EXPECT_EQ(x, alpha);
      ++ones;
    }
  }
  EXPECT_EQ(ones, 1u);
}

TEST_P(DpfDomainTest, EvalPointMatchesEvalFull) {
  const int d = GetParam();
  const std::uint64_t domain = std::uint64_t{1} << d;
  Rng rng(static_cast<std::uint64_t>(d) * 104729);
  const std::uint64_t alpha = rng.UniformInt(domain);
  const KeyPair pair = Generate(alpha, d);
  const BitVector full = EvalFull(pair.key0);
  // Sample points (all points for small domains).
  const std::uint64_t step = domain <= 256 ? 1 : domain / 128;
  for (std::uint64_t x = 0; x < domain; x += step) {
    EXPECT_EQ(EvalPoint(pair.key0, x), GetBit(full, x)) << "x=" << x;
  }
  EXPECT_EQ(EvalPoint(pair.key0, alpha), GetBit(full, alpha));
}

TEST_P(DpfDomainTest, SingleKeyLooksBalanced) {
  // One party's share alone should be a pseudorandom bit vector: roughly
  // half ones, regardless of alpha. (A structural privacy smoke test.)
  const int d = GetParam();
  if (d < 8) return;  // too small for a meaningful balance check
  const std::uint64_t domain = std::uint64_t{1} << d;
  const KeyPair pair = Generate(/*alpha=*/0, d);
  const BitVector b0 = EvalFull(pair.key0);
  std::uint64_t ones = 0;
  for (std::uint64_t x = 0; x < domain; ++x) ones += GetBit(b0, x);
  EXPECT_GT(ones, domain * 40 / 100);
  EXPECT_LT(ones, domain * 60 / 100);
}

INSTANTIATE_TEST_SUITE_P(Domains, DpfDomainTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 14));

TEST(Dpf, AlphaAtDomainEdges) {
  const int d = 10;
  const std::uint64_t domain = std::uint64_t{1} << d;
  for (std::uint64_t alpha : {std::uint64_t{0}, domain - 1, domain / 2}) {
    const KeyPair pair = Generate(alpha, d);
    const BitVector b0 = EvalFull(pair.key0);
    const BitVector b1 = EvalFull(pair.key1);
    for (std::uint64_t x = 0; x < domain; ++x) {
      EXPECT_EQ(GetBit(b0, x) ^ GetBit(b1, x), x == alpha ? 1 : 0);
    }
  }
}

TEST(Dpf, FreshKeysDiffer) {
  const KeyPair a = Generate(5, 8);
  const KeyPair b = Generate(5, 8);
  // Same alpha, fresh randomness: serialized keys must differ.
  EXPECT_NE(a.key0.Serialize(), b.key0.Serialize());
}

TEST(Dpf, KeySizeIndependentOfAlpha) {
  // (λ+2)·d-bit keys: size must leak nothing about alpha (paper §5.1).
  const auto size_for = [](std::uint64_t alpha) {
    return Generate(alpha, 22).key0.Serialize().size();
  };
  const std::size_t s = size_for(0);
  EXPECT_EQ(s, size_for(123456));
  EXPECT_EQ(s, size_for((1u << 22) - 1));
  // 2 bytes header + 16-byte seed + d * 17 bytes.
  EXPECT_EQ(s, 2 + 16 + 22 * 17);
}

TEST(Dpf, SerializeDeserializeRoundTrip) {
  const KeyPair pair = Generate(99, 12);
  for (const DpfKey* key : {&pair.key0, &pair.key1}) {
    const Bytes wire = key->Serialize();
    EXPECT_EQ(wire.size(), key->SerializedSize());
    auto parsed = DpfKey::Deserialize(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(*parsed == *key);
  }
}

TEST(Dpf, DeserializedKeyEvaluatesIdentically) {
  const KeyPair pair = Generate(777, 11);
  const Bytes wire = pair.key1.Serialize();
  const DpfKey parsed = DpfKey::Deserialize(wire).value();
  const BitVector original = EvalFull(pair.key1);
  const BitVector reparsed = EvalFull(parsed);
  EXPECT_EQ(original, reparsed);
}

TEST(Dpf, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DpfKey::Deserialize(Bytes{}).ok());
  EXPECT_FALSE(DpfKey::Deserialize(Bytes(5, 0xab)).ok());
  // Valid prefix but truncated correction words.
  Bytes wire = Generate(3, 8).key0.Serialize();
  wire.resize(wire.size() - 4);
  EXPECT_FALSE(DpfKey::Deserialize(wire).ok());
  // Trailing garbage.
  Bytes wire2 = Generate(3, 8).key0.Serialize();
  wire2.push_back(0);
  EXPECT_FALSE(DpfKey::Deserialize(wire2).ok());
  // Bad party byte.
  Bytes wire3 = Generate(3, 8).key0.Serialize();
  wire3[0] = 9;
  EXPECT_FALSE(DpfKey::Deserialize(wire3).ok());
}

TEST(Dpf, DeserializeRejectsOutOfRangeDomainBits) {
  // Pre-fix, domain_bits outside [1, kMaxDomainBits] deserialized fine and
  // blew up later: 0 made EvalFull return an empty vector others indexed
  // into, 41+ asked for a 2^41-bit allocation from attacker-chosen input.
  const Bytes zero_bits(2 + kSeedSize, 0);  // party 0, domain_bits 0, seed
  EXPECT_FALSE(DpfKey::Deserialize(zero_bits).ok()) << "domain_bits 0";

  Bytes too_big;
  too_big.push_back(0);   // party
  too_big.push_back(41);  // domain_bits > kMaxDomainBits
  too_big.resize(too_big.size() + kSeedSize);          // root seed
  too_big.resize(too_big.size() + 41 * (kSeedSize + 1));  // 41 CWs
  EXPECT_FALSE(DpfKey::Deserialize(too_big).ok()) << "domain_bits 41";
}

TEST(Dpf, DeserializeRejectsBadCorrectionWordBits) {
  // The per-level t-bit pair packs into 2 bits; anything above 3 means the
  // bytes were not produced by Serialize().
  Bytes wire = Generate(3, 4).key0.Serialize();
  wire[wire.size() - 1] = 4;  // last CW's packed bits
  EXPECT_FALSE(DpfKey::Deserialize(wire).ok());
}

TEST(Dpf, GenerateRejectsBadArguments) {
  EXPECT_THROW(Generate(0, 0), InvariantViolation);
  EXPECT_THROW(Generate(0, 99), InvariantViolation);
  EXPECT_THROW(Generate(1u << 8, 8), InvariantViolation);  // alpha too big
}

// ----------------------------------------------------- distributed eval

class DpfShardTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DpfShardTest, ShardedEvalMatchesFullEval) {
  const auto [d, top_bits] = GetParam();
  const std::uint64_t domain = std::uint64_t{1} << d;
  Rng rng(static_cast<std::uint64_t>(d * 31 + top_bits));
  const std::uint64_t alpha = rng.UniformInt(domain);
  const KeyPair pair = Generate(alpha, d);

  for (const DpfKey* key : {&pair.key0, &pair.key1}) {
    const BitVector full = EvalFull(*key);
    const std::vector<SubtreeKey> shards = SplitForShards(*key, top_bits);
    ASSERT_EQ(shards.size(), std::uint64_t{1} << top_bits);

    // Shard s covers the residue class x ≡ s (mod #shards); its leaf j is
    // the point x = s + (j << top_bits).
    const std::uint64_t per_shard = domain >> top_bits;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const BitVector sub = EvalSubtree(shards[s]);
      for (std::uint64_t j = 0; j < per_shard; ++j) {
        EXPECT_EQ(GetBit(sub, j), GetBit(full, s + (j << top_bits)))
            << "shard " << s << " leaf " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Splits, DpfShardTest,
    ::testing::Values(std::tuple{8, 0}, std::tuple{8, 1}, std::tuple{8, 3},
                      std::tuple{8, 8}, std::tuple{12, 4},
                      std::tuple{14, 6}));

TEST(DpfShard, TwoPartyShardedStillPointFunction) {
  // Shard both parties' keys, evaluate shard-wise, and confirm the XOR is
  // still the point function (this is the §5.2 deployment path).
  const int d = 10, top = 3;
  const std::uint64_t alpha = 421;
  const KeyPair pair = Generate(alpha, d);
  const auto shards0 = SplitForShards(pair.key0, top);
  const auto shards1 = SplitForShards(pair.key1, top);
  const std::uint64_t per_shard = std::uint64_t{1} << (d - top);

  std::uint64_t ones = 0;
  for (std::size_t s = 0; s < shards0.size(); ++s) {
    const BitVector b0 = EvalSubtree(shards0[s]);
    const BitVector b1 = EvalSubtree(shards1[s]);
    for (std::uint64_t j = 0; j < per_shard; ++j) {
      const std::uint8_t v = GetBit(b0, j) ^ GetBit(b1, j);
      if (v) {
        EXPECT_EQ(s + (j << top), alpha);
        ++ones;
      }
    }
  }
  EXPECT_EQ(ones, 1u);
}

TEST(DpfShard, SubtreeKeySerializationRoundTrip) {
  const KeyPair pair = Generate(100, 10);
  const auto shards = SplitForShards(pair.key0, 4);
  for (const SubtreeKey& sk : shards) {
    const Bytes wire = sk.Serialize();
    EXPECT_EQ(wire.size(), sk.SerializedSize());
    auto parsed = SubtreeKey::Deserialize(wire);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(EvalSubtree(*parsed), EvalSubtree(sk));
  }
}

TEST(DpfShard, SubtreeKeySmallerThanFullKey) {
  // The per-shard key the front-end ships is smaller than the client's key:
  // that is the point of the §5.2 tree split.
  const KeyPair pair = Generate(7, 22);
  const auto shards = SplitForShards(pair.key0, 8);
  EXPECT_LT(shards[0].SerializedSize(), pair.key0.SerializedSize());
}

// ------------------------------------------------------- parallel eval
//
// EvalFullParallel must be bit-identical to EvalFull for every pool size:
// the sub-tree tiling (blocks of 64 sub-trees own whole output words) is a
// pure layout transformation. Swept over thread counts x domain sizes,
// including domains far below the parallel threshold (serial fallback) and
// large enough ones that several blocks land on each worker.

class DpfParallelTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DpfParallelTest, EvalFullParallelMatchesSerial) {
  const auto [threads, d] = GetParam();
  ThreadPool pool(threads);
  const std::uint64_t domain = std::uint64_t{1} << d;
  Rng rng(static_cast<std::uint64_t>(threads * 1000 + d));
  const std::uint64_t alpha = rng.UniformInt(domain);
  const KeyPair pair = Generate(alpha, d);
  for (const DpfKey* key : {&pair.key0, &pair.key1}) {
    EXPECT_EQ(EvalFullParallel(*key, &pool), EvalFull(*key))
        << "threads=" << threads << " d=" << d;
    // Null pool must behave exactly like the serial path too.
    EXPECT_EQ(EvalFullParallel(*key, nullptr), EvalFull(*key));
  }
}

TEST_P(DpfParallelTest, EvalSubtreeParallelMatchesSerial) {
  const auto [threads, d] = GetParam();
  ThreadPool pool(threads);
  const std::uint64_t domain = std::uint64_t{1} << d;
  Rng rng(static_cast<std::uint64_t>(threads * 31 + d));
  const std::uint64_t alpha = rng.UniformInt(domain);
  const KeyPair pair = Generate(alpha, d);
  const int top_bits = d >= 4 ? 2 : 0;
  for (const DpfKey* key : {&pair.key0, &pair.key1}) {
    const std::vector<SubtreeKey> shards = SplitForShards(*key, top_bits);
    for (const SubtreeKey& sk : shards) {
      EXPECT_EQ(EvalSubtreeParallel(sk, &pool), EvalSubtree(sk))
          << "threads=" << threads << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PoolsAndDomains, DpfParallelTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 8),
                                            ::testing::Values(1, 5, 12, 18)));

}  // namespace
}  // namespace lw::dpf
