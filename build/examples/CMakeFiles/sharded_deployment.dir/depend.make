# Empty dependencies file for sharded_deployment.
# This may be replaced when dependencies are built.
