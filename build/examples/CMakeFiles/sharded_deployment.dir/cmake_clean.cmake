file(REMOVE_RECURSE
  "CMakeFiles/sharded_deployment.dir/sharded_deployment.cpp.o"
  "CMakeFiles/sharded_deployment.dir/sharded_deployment.cpp.o.d"
  "sharded_deployment"
  "sharded_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
