# Empty compiler generated dependencies file for multi_universe.
# This may be replaced when dependencies are built.
