file(REMOVE_RECURSE
  "CMakeFiles/multi_universe.dir/multi_universe.cpp.o"
  "CMakeFiles/multi_universe.dir/multi_universe.cpp.o.d"
  "multi_universe"
  "multi_universe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_universe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
