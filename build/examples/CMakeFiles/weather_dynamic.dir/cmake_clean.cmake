file(REMOVE_RECURSE
  "CMakeFiles/weather_dynamic.dir/weather_dynamic.cpp.o"
  "CMakeFiles/weather_dynamic.dir/weather_dynamic.cpp.o.d"
  "weather_dynamic"
  "weather_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
