# Empty dependencies file for weather_dynamic.
# This may be replaced when dependencies are built.
