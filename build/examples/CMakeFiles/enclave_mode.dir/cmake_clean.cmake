file(REMOVE_RECURSE
  "CMakeFiles/enclave_mode.dir/enclave_mode.cpp.o"
  "CMakeFiles/enclave_mode.dir/enclave_mode.cpp.o.d"
  "enclave_mode"
  "enclave_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
