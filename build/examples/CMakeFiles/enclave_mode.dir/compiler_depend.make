# Empty compiler generated dependencies file for enclave_mode.
# This may be replaced when dependencies are built.
