file(REMOVE_RECURSE
  "CMakeFiles/news_browse.dir/news_browse.cpp.o"
  "CMakeFiles/news_browse.dir/news_browse.cpp.o.d"
  "news_browse"
  "news_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
