# Empty compiler generated dependencies file for news_browse.
# This may be replaced when dependencies are built.
