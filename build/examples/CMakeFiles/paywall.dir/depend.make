# Empty dependencies file for paywall.
# This may be replaced when dependencies are built.
