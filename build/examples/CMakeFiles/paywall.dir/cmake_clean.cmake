file(REMOVE_RECURSE
  "CMakeFiles/paywall.dir/paywall.cpp.o"
  "CMakeFiles/paywall.dir/paywall.cpp.o.d"
  "paywall"
  "paywall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paywall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
