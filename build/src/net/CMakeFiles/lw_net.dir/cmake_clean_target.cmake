file(REMOVE_RECURSE
  "liblw_net.a"
)
