# Empty compiler generated dependencies file for lw_net.
# This may be replaced when dependencies are built.
