file(REMOVE_RECURSE
  "CMakeFiles/lw_net.dir/inmem.cc.o"
  "CMakeFiles/lw_net.dir/inmem.cc.o.d"
  "CMakeFiles/lw_net.dir/tcp.cc.o"
  "CMakeFiles/lw_net.dir/tcp.cc.o.d"
  "liblw_net.a"
  "liblw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
