file(REMOVE_RECURSE
  "CMakeFiles/lw_cost.dir/costmodel.cc.o"
  "CMakeFiles/lw_cost.dir/costmodel.cc.o.d"
  "liblw_cost.a"
  "liblw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
