# Empty dependencies file for lw_cost.
# This may be replaced when dependencies are built.
