file(REMOVE_RECURSE
  "liblw_cost.a"
)
