file(REMOVE_RECURSE
  "CMakeFiles/lw_stats.dir/private_stats.cc.o"
  "CMakeFiles/lw_stats.dir/private_stats.cc.o.d"
  "liblw_stats.a"
  "liblw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
