# Empty dependencies file for lw_stats.
# This may be replaced when dependencies are built.
