file(REMOVE_RECURSE
  "liblw_stats.a"
)
