file(REMOVE_RECURSE
  "liblw_lightweb.a"
)
