file(REMOVE_RECURSE
  "CMakeFiles/lw_lightweb.dir/access.cc.o"
  "CMakeFiles/lw_lightweb.dir/access.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/browser.cc.o"
  "CMakeFiles/lw_lightweb.dir/browser.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/cdn.cc.o"
  "CMakeFiles/lw_lightweb.dir/cdn.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/channel.cc.o"
  "CMakeFiles/lw_lightweb.dir/channel.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/lightscript.cc.o"
  "CMakeFiles/lw_lightweb.dir/lightscript.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/paced.cc.o"
  "CMakeFiles/lw_lightweb.dir/paced.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/path.cc.o"
  "CMakeFiles/lw_lightweb.dir/path.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/publisher.cc.o"
  "CMakeFiles/lw_lightweb.dir/publisher.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/snapshot.cc.o"
  "CMakeFiles/lw_lightweb.dir/snapshot.cc.o.d"
  "CMakeFiles/lw_lightweb.dir/universe.cc.o"
  "CMakeFiles/lw_lightweb.dir/universe.cc.o.d"
  "liblw_lightweb.a"
  "liblw_lightweb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_lightweb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
