# Empty compiler generated dependencies file for lw_lightweb.
# This may be replaced when dependencies are built.
