
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lightweb/access.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/access.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/access.cc.o.d"
  "/root/repo/src/lightweb/browser.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/browser.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/browser.cc.o.d"
  "/root/repo/src/lightweb/cdn.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/cdn.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/cdn.cc.o.d"
  "/root/repo/src/lightweb/channel.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/channel.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/channel.cc.o.d"
  "/root/repo/src/lightweb/lightscript.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/lightscript.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/lightscript.cc.o.d"
  "/root/repo/src/lightweb/paced.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/paced.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/paced.cc.o.d"
  "/root/repo/src/lightweb/path.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/path.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/path.cc.o.d"
  "/root/repo/src/lightweb/publisher.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/publisher.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/publisher.cc.o.d"
  "/root/repo/src/lightweb/snapshot.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/snapshot.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/snapshot.cc.o.d"
  "/root/repo/src/lightweb/universe.cc" "src/lightweb/CMakeFiles/lw_lightweb.dir/universe.cc.o" "gcc" "src/lightweb/CMakeFiles/lw_lightweb.dir/universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zltp/CMakeFiles/lw_zltp.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lw_json.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/lw_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lw_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dpf/CMakeFiles/lw_dpf.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/lw_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lw_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
