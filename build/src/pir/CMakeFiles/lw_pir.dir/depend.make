# Empty dependencies file for lw_pir.
# This may be replaced when dependencies are built.
