file(REMOVE_RECURSE
  "liblw_pir.a"
)
