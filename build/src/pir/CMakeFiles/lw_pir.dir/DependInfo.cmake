
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pir/blob_db.cc" "src/pir/CMakeFiles/lw_pir.dir/blob_db.cc.o" "gcc" "src/pir/CMakeFiles/lw_pir.dir/blob_db.cc.o.d"
  "/root/repo/src/pir/cuckoo.cc" "src/pir/CMakeFiles/lw_pir.dir/cuckoo.cc.o" "gcc" "src/pir/CMakeFiles/lw_pir.dir/cuckoo.cc.o.d"
  "/root/repo/src/pir/cuckoo_store.cc" "src/pir/CMakeFiles/lw_pir.dir/cuckoo_store.cc.o" "gcc" "src/pir/CMakeFiles/lw_pir.dir/cuckoo_store.cc.o.d"
  "/root/repo/src/pir/keyword.cc" "src/pir/CMakeFiles/lw_pir.dir/keyword.cc.o" "gcc" "src/pir/CMakeFiles/lw_pir.dir/keyword.cc.o.d"
  "/root/repo/src/pir/packing.cc" "src/pir/CMakeFiles/lw_pir.dir/packing.cc.o" "gcc" "src/pir/CMakeFiles/lw_pir.dir/packing.cc.o.d"
  "/root/repo/src/pir/two_server.cc" "src/pir/CMakeFiles/lw_pir.dir/two_server.cc.o" "gcc" "src/pir/CMakeFiles/lw_pir.dir/two_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpf/CMakeFiles/lw_dpf.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lw_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
