file(REMOVE_RECURSE
  "CMakeFiles/lw_pir.dir/blob_db.cc.o"
  "CMakeFiles/lw_pir.dir/blob_db.cc.o.d"
  "CMakeFiles/lw_pir.dir/cuckoo.cc.o"
  "CMakeFiles/lw_pir.dir/cuckoo.cc.o.d"
  "CMakeFiles/lw_pir.dir/cuckoo_store.cc.o"
  "CMakeFiles/lw_pir.dir/cuckoo_store.cc.o.d"
  "CMakeFiles/lw_pir.dir/keyword.cc.o"
  "CMakeFiles/lw_pir.dir/keyword.cc.o.d"
  "CMakeFiles/lw_pir.dir/packing.cc.o"
  "CMakeFiles/lw_pir.dir/packing.cc.o.d"
  "CMakeFiles/lw_pir.dir/two_server.cc.o"
  "CMakeFiles/lw_pir.dir/two_server.cc.o.d"
  "liblw_pir.a"
  "liblw_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
