
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cc" "src/crypto/CMakeFiles/lw_crypto.dir/aead.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/aead.cc.o.d"
  "/root/repo/src/crypto/aes128.cc" "src/crypto/CMakeFiles/lw_crypto.dir/aes128.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/aes128.cc.o.d"
  "/root/repo/src/crypto/chacha20.cc" "src/crypto/CMakeFiles/lw_crypto.dir/chacha20.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/chacha20.cc.o.d"
  "/root/repo/src/crypto/hkdf.cc" "src/crypto/CMakeFiles/lw_crypto.dir/hkdf.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/hkdf.cc.o.d"
  "/root/repo/src/crypto/poly1305.cc" "src/crypto/CMakeFiles/lw_crypto.dir/poly1305.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/poly1305.cc.o.d"
  "/root/repo/src/crypto/prg.cc" "src/crypto/CMakeFiles/lw_crypto.dir/prg.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/prg.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/lw_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/siphash.cc" "src/crypto/CMakeFiles/lw_crypto.dir/siphash.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/siphash.cc.o.d"
  "/root/repo/src/crypto/x25519.cc" "src/crypto/CMakeFiles/lw_crypto.dir/x25519.cc.o" "gcc" "src/crypto/CMakeFiles/lw_crypto.dir/x25519.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
