# Empty dependencies file for lw_crypto.
# This may be replaced when dependencies are built.
