file(REMOVE_RECURSE
  "CMakeFiles/lw_crypto.dir/aead.cc.o"
  "CMakeFiles/lw_crypto.dir/aead.cc.o.d"
  "CMakeFiles/lw_crypto.dir/aes128.cc.o"
  "CMakeFiles/lw_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/lw_crypto.dir/chacha20.cc.o"
  "CMakeFiles/lw_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/lw_crypto.dir/hkdf.cc.o"
  "CMakeFiles/lw_crypto.dir/hkdf.cc.o.d"
  "CMakeFiles/lw_crypto.dir/poly1305.cc.o"
  "CMakeFiles/lw_crypto.dir/poly1305.cc.o.d"
  "CMakeFiles/lw_crypto.dir/prg.cc.o"
  "CMakeFiles/lw_crypto.dir/prg.cc.o.d"
  "CMakeFiles/lw_crypto.dir/sha256.cc.o"
  "CMakeFiles/lw_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/lw_crypto.dir/siphash.cc.o"
  "CMakeFiles/lw_crypto.dir/siphash.cc.o.d"
  "CMakeFiles/lw_crypto.dir/x25519.cc.o"
  "CMakeFiles/lw_crypto.dir/x25519.cc.o.d"
  "liblw_crypto.a"
  "liblw_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
