file(REMOVE_RECURSE
  "liblw_crypto.a"
)
