# Empty dependencies file for lw_util.
# This may be replaced when dependencies are built.
