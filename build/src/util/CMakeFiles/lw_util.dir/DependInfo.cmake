
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/file.cc" "src/util/CMakeFiles/lw_util.dir/file.cc.o" "gcc" "src/util/CMakeFiles/lw_util.dir/file.cc.o.d"
  "/root/repo/src/util/hex.cc" "src/util/CMakeFiles/lw_util.dir/hex.cc.o" "gcc" "src/util/CMakeFiles/lw_util.dir/hex.cc.o.d"
  "/root/repo/src/util/log.cc" "src/util/CMakeFiles/lw_util.dir/log.cc.o" "gcc" "src/util/CMakeFiles/lw_util.dir/log.cc.o.d"
  "/root/repo/src/util/rand.cc" "src/util/CMakeFiles/lw_util.dir/rand.cc.o" "gcc" "src/util/CMakeFiles/lw_util.dir/rand.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
