file(REMOVE_RECURSE
  "liblw_util.a"
)
