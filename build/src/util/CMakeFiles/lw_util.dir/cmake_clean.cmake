file(REMOVE_RECURSE
  "CMakeFiles/lw_util.dir/file.cc.o"
  "CMakeFiles/lw_util.dir/file.cc.o.d"
  "CMakeFiles/lw_util.dir/hex.cc.o"
  "CMakeFiles/lw_util.dir/hex.cc.o.d"
  "CMakeFiles/lw_util.dir/log.cc.o"
  "CMakeFiles/lw_util.dir/log.cc.o.d"
  "CMakeFiles/lw_util.dir/rand.cc.o"
  "CMakeFiles/lw_util.dir/rand.cc.o.d"
  "liblw_util.a"
  "liblw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
