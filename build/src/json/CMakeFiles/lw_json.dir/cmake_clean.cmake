file(REMOVE_RECURSE
  "CMakeFiles/lw_json.dir/json.cc.o"
  "CMakeFiles/lw_json.dir/json.cc.o.d"
  "liblw_json.a"
  "liblw_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
