file(REMOVE_RECURSE
  "liblw_json.a"
)
