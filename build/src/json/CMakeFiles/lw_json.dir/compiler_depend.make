# Empty compiler generated dependencies file for lw_json.
# This may be replaced when dependencies are built.
