# Empty compiler generated dependencies file for lw_dpf.
# This may be replaced when dependencies are built.
