file(REMOVE_RECURSE
  "CMakeFiles/lw_dpf.dir/dpf.cc.o"
  "CMakeFiles/lw_dpf.dir/dpf.cc.o.d"
  "liblw_dpf.a"
  "liblw_dpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_dpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
