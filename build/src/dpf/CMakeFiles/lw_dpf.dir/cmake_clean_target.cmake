file(REMOVE_RECURSE
  "liblw_dpf.a"
)
