# Empty compiler generated dependencies file for lw_oram.
# This may be replaced when dependencies are built.
