file(REMOVE_RECURSE
  "liblw_oram.a"
)
