file(REMOVE_RECURSE
  "CMakeFiles/lw_oram.dir/enclave.cc.o"
  "CMakeFiles/lw_oram.dir/enclave.cc.o.d"
  "CMakeFiles/lw_oram.dir/path_oram.cc.o"
  "CMakeFiles/lw_oram.dir/path_oram.cc.o.d"
  "CMakeFiles/lw_oram.dir/storage.cc.o"
  "CMakeFiles/lw_oram.dir/storage.cc.o.d"
  "liblw_oram.a"
  "liblw_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
