file(REMOVE_RECURSE
  "liblw_zltp.a"
)
