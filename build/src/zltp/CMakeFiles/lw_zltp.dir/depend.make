# Empty dependencies file for lw_zltp.
# This may be replaced when dependencies are built.
