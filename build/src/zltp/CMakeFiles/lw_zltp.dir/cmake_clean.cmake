file(REMOVE_RECURSE
  "CMakeFiles/lw_zltp.dir/batch.cc.o"
  "CMakeFiles/lw_zltp.dir/batch.cc.o.d"
  "CMakeFiles/lw_zltp.dir/client.cc.o"
  "CMakeFiles/lw_zltp.dir/client.cc.o.d"
  "CMakeFiles/lw_zltp.dir/frontend.cc.o"
  "CMakeFiles/lw_zltp.dir/frontend.cc.o.d"
  "CMakeFiles/lw_zltp.dir/messages.cc.o"
  "CMakeFiles/lw_zltp.dir/messages.cc.o.d"
  "CMakeFiles/lw_zltp.dir/server.cc.o"
  "CMakeFiles/lw_zltp.dir/server.cc.o.d"
  "CMakeFiles/lw_zltp.dir/store.cc.o"
  "CMakeFiles/lw_zltp.dir/store.cc.o.d"
  "liblw_zltp.a"
  "liblw_zltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_zltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
