
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zltp/batch.cc" "src/zltp/CMakeFiles/lw_zltp.dir/batch.cc.o" "gcc" "src/zltp/CMakeFiles/lw_zltp.dir/batch.cc.o.d"
  "/root/repo/src/zltp/client.cc" "src/zltp/CMakeFiles/lw_zltp.dir/client.cc.o" "gcc" "src/zltp/CMakeFiles/lw_zltp.dir/client.cc.o.d"
  "/root/repo/src/zltp/frontend.cc" "src/zltp/CMakeFiles/lw_zltp.dir/frontend.cc.o" "gcc" "src/zltp/CMakeFiles/lw_zltp.dir/frontend.cc.o.d"
  "/root/repo/src/zltp/messages.cc" "src/zltp/CMakeFiles/lw_zltp.dir/messages.cc.o" "gcc" "src/zltp/CMakeFiles/lw_zltp.dir/messages.cc.o.d"
  "/root/repo/src/zltp/server.cc" "src/zltp/CMakeFiles/lw_zltp.dir/server.cc.o" "gcc" "src/zltp/CMakeFiles/lw_zltp.dir/server.cc.o.d"
  "/root/repo/src/zltp/store.cc" "src/zltp/CMakeFiles/lw_zltp.dir/store.cc.o" "gcc" "src/zltp/CMakeFiles/lw_zltp.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pir/CMakeFiles/lw_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/dpf/CMakeFiles/lw_dpf.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/lw_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lw_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
