file(REMOVE_RECURSE
  "liblw_workload.a"
)
