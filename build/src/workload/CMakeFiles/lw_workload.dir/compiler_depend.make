# Empty compiler generated dependencies file for lw_workload.
# This may be replaced when dependencies are built.
