file(REMOVE_RECURSE
  "CMakeFiles/lw_workload.dir/workload.cc.o"
  "CMakeFiles/lw_workload.dir/workload.cc.o.d"
  "liblw_workload.a"
  "liblw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
