# Empty compiler generated dependencies file for lightweb_browse.
# This may be replaced when dependencies are built.
