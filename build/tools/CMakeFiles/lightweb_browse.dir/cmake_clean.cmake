file(REMOVE_RECURSE
  "CMakeFiles/lightweb_browse.dir/lightweb_browse.cc.o"
  "CMakeFiles/lightweb_browse.dir/lightweb_browse.cc.o.d"
  "lightweb_browse"
  "lightweb_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightweb_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
