file(REMOVE_RECURSE
  "CMakeFiles/lightweb_serve.dir/lightweb_serve.cc.o"
  "CMakeFiles/lightweb_serve.dir/lightweb_serve.cc.o.d"
  "lightweb_serve"
  "lightweb_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightweb_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
