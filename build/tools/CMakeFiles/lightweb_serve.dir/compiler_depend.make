# Empty compiler generated dependencies file for lightweb_serve.
# This may be replaced when dependencies are built.
