# Empty dependencies file for bench_server_compute.
# This may be replaced when dependencies are built.
