file(REMOVE_RECURSE
  "CMakeFiles/bench_server_compute.dir/bench_server_compute.cc.o"
  "CMakeFiles/bench_server_compute.dir/bench_server_compute.cc.o.d"
  "bench_server_compute"
  "bench_server_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
