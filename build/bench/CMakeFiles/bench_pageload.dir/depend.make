# Empty dependencies file for bench_pageload.
# This may be replaced when dependencies are built.
