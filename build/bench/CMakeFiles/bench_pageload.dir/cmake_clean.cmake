file(REMOVE_RECURSE
  "CMakeFiles/bench_pageload.dir/bench_pageload.cc.o"
  "CMakeFiles/bench_pageload.dir/bench_pageload.cc.o.d"
  "bench_pageload"
  "bench_pageload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pageload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
