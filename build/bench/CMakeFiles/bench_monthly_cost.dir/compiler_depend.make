# Empty compiler generated dependencies file for bench_monthly_cost.
# This may be replaced when dependencies are built.
