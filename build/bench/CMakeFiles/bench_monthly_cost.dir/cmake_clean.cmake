file(REMOVE_RECURSE
  "CMakeFiles/bench_monthly_cost.dir/bench_monthly_cost.cc.o"
  "CMakeFiles/bench_monthly_cost.dir/bench_monthly_cost.cc.o.d"
  "bench_monthly_cost"
  "bench_monthly_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monthly_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
