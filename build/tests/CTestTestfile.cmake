# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/dpf_test[1]_include.cmake")
include("/root/repo/build/tests/pir_test[1]_include.cmake")
include("/root/repo/build/tests/oram_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/zltp_test[1]_include.cmake")
include("/root/repo/build/tests/lightweb_path_test[1]_include.cmake")
include("/root/repo/build/tests/lightscript_test[1]_include.cmake")
include("/root/repo/build/tests/lightweb_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cuckoo_store_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
