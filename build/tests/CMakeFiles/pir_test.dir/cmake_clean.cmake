file(REMOVE_RECURSE
  "CMakeFiles/pir_test.dir/pir_test.cc.o"
  "CMakeFiles/pir_test.dir/pir_test.cc.o.d"
  "pir_test"
  "pir_test.pdb"
  "pir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
