
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/failure_injection_test.cc" "tests/CMakeFiles/failure_injection_test.dir/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/failure_injection_test.dir/failure_injection_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zltp/CMakeFiles/lw_zltp.dir/DependInfo.cmake"
  "/root/repo/build/src/lightweb/CMakeFiles/lw_lightweb.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/lw_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/lw_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/dpf/CMakeFiles/lw_dpf.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lw_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lw_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
