file(REMOVE_RECURSE
  "CMakeFiles/lightweb_test.dir/lightweb_test.cc.o"
  "CMakeFiles/lightweb_test.dir/lightweb_test.cc.o.d"
  "lightweb_test"
  "lightweb_test.pdb"
  "lightweb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightweb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
