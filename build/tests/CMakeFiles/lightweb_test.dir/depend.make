# Empty dependencies file for lightweb_test.
# This may be replaced when dependencies are built.
