# Empty compiler generated dependencies file for zltp_test.
# This may be replaced when dependencies are built.
