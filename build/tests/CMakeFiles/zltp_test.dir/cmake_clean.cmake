file(REMOVE_RECURSE
  "CMakeFiles/zltp_test.dir/zltp_test.cc.o"
  "CMakeFiles/zltp_test.dir/zltp_test.cc.o.d"
  "zltp_test"
  "zltp_test.pdb"
  "zltp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zltp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
