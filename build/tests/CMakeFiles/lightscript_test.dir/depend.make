# Empty dependencies file for lightscript_test.
# This may be replaced when dependencies are built.
