file(REMOVE_RECURSE
  "CMakeFiles/lightscript_test.dir/lightscript_test.cc.o"
  "CMakeFiles/lightscript_test.dir/lightscript_test.cc.o.d"
  "lightscript_test"
  "lightscript_test.pdb"
  "lightscript_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightscript_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
