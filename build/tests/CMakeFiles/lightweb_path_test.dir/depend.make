# Empty dependencies file for lightweb_path_test.
# This may be replaced when dependencies are built.
