file(REMOVE_RECURSE
  "CMakeFiles/lightweb_path_test.dir/lightweb_path_test.cc.o"
  "CMakeFiles/lightweb_path_test.dir/lightweb_path_test.cc.o.d"
  "lightweb_path_test"
  "lightweb_path_test.pdb"
  "lightweb_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightweb_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
