# Empty dependencies file for cuckoo_store_test.
# This may be replaced when dependencies are built.
