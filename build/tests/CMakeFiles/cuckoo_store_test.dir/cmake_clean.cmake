file(REMOVE_RECURSE
  "CMakeFiles/cuckoo_store_test.dir/cuckoo_store_test.cc.o"
  "CMakeFiles/cuckoo_store_test.dir/cuckoo_store_test.cc.o.d"
  "cuckoo_store_test"
  "cuckoo_store_test.pdb"
  "cuckoo_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuckoo_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
