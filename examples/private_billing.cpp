// Private per-domain billing (paper §4).
//
// The CDN wants to charge publishers by query volume without learning which
// user queried which domain. Browsing clients split per-visit indicator
// reports into additive secret shares for two non-colluding aggregation
// servers; only the combined epoch totals are meaningful.
//
// Build & run:  ./build/examples/private_billing
#include <cstdio>

#include "util/check.h"

#include "stats/private_stats.h"
#include "util/rand.h"
#include "workload/workload.h"
#include "lightweb/path.h"

int main() {
  using namespace lw;

  // The domains this universe bills for.
  const workload::SyntheticCorpus corpus(workload::C4Like(4096, /*seed=*/3));
  std::vector<std::string> domains;
  for (std::uint64_t d = 0; d < corpus.spec().num_domains; ++d) {
    domains.push_back("domain" + std::to_string(d) + ".example");
  }
  stats::DomainQueryStats billing(domains);
  stats::AggregationServer agg0(billing.num_domains());
  stats::AggregationServer agg1(billing.num_domains());

  // Simulate a day of browsing: 40 users, Zipf-popular pages.
  std::vector<std::uint64_t> ground_truth(billing.num_domains(), 0);
  for (int user = 0; user < 40; ++user) {
    workload::SessionGenerator session(corpus, 1.0, 0.6,
                                       static_cast<std::uint64_t>(user));
    for (int visit = 0; visit < 50; ++visit) {
      const std::string path = session.NextVisit();
      const std::string domain = lightweb::ParsePath(path)->domain;

      auto report = billing.MakeReport(domain);
      if (!report.ok()) continue;
      LW_CHECK((agg0.Accept(report->for_server0)).ok());
      LW_CHECK((agg1.Accept(report->for_server1)).ok());

      for (std::size_t i = 0; i < billing.domains().size(); ++i) {
        if (billing.domains()[i] == domain) ++ground_truth[i];
      }
    }
  }
  std::printf("collected %llu private reports\n\n",
              static_cast<unsigned long long>(agg0.reports_accepted()));

  // Either server's accumulator alone is uniform noise:
  std::printf("aggregation server 0's view of bucket 0 (alone): %llu "
              "(garbage)\n",
              static_cast<unsigned long long>(agg0.totals()[0]));

  // Billing epoch ends: combine and label.
  auto combined = stats::CombineTotals(agg0.totals(), agg1.totals());
  auto labeled = billing.LabelTotals(*combined);

  std::printf("\n%-22s %10s %10s %8s\n", "domain", "billed", "truth", "ok?");
  int mismatches = 0;
  int shown = 0;
  for (std::size_t i = 0; i < labeled->size(); ++i) {
    const auto& dc = (*labeled)[i];
    const bool ok = dc.count == ground_truth[i];
    mismatches += !ok;
    if (dc.count > 0 && shown < 8) {
      std::printf("%-22s %10llu %10llu %8s\n", dc.domain.c_str(),
                  static_cast<unsigned long long>(dc.count),
                  static_cast<unsigned long long>(ground_truth[i]),
                  ok ? "yes" : "NO");
      ++shown;
    }
  }
  std::printf("... (%zu domains total, %d mismatches)\n",
              labeled->size(), mismatches);
  std::printf("\nexact per-domain totals recovered; no server ever saw an "
              "individual user's domain.\n");
  return mismatches == 0 ? 0 : 1;
}
