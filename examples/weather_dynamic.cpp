// Dynamic content without server-side state (paper §3.3).
//
// "the weather.com lightweb page could prompt the user for their postal
// code and cache it in local storage. Later on, when the user visits
// weather.com, the page could use the user's cached postal code to
// automatically fetch a per-postal-code data blob."
//
// The CDN serves every postal code's blob identically; which one the user
// fetched is hidden by the private-GET, so the personalization leaks
// nothing.
//
// Build & run:  ./build/examples/weather_dynamic
#include <cstdio>

#include "util/check.h"

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"

int main() {
  using namespace lw;
  using namespace lw::lightweb;

  UniverseConfig config;
  config.name = "weather";
  config.code_domain_bits = 10;
  config.code_blob_size = 4096;
  config.data_domain_bits = 14;
  config.data_blob_size = 512;
  config.fetches_per_page = 2;
  Universe universe(config);

  Publisher weather_co("weather-co");
  SiteBuilder site("weather.com");
  site.SetSiteName("Weather Now")
      .AddRoute("/",
                {"weather.com/by-zip/{local.postal_code|unset}.json",
                 "weather.com/alerts.json"},
                "# {{site}}\n"
                "{{#if data0.forecast}}"
                "Forecast for {{local.postal_code}}: {{data0.forecast}}, "
                "high {{data0.high}}°\n"
                "{{/if}}"
                "{{^if data0.forecast}}"
                "(no postal code set — showing nothing; set one in local "
                "storage)\n"
                "{{/if}}"
                "National alerts: {{data1.text}}\n");
  if (!weather_co.PublishSite(universe, site).ok()) return 1;

  // Per-postal-code blobs — one for every region the publisher covers.
  const struct { const char* zip; const char* forecast; int high; } kData[] =
      {{"94703", "fog then sun", 19},
       {"10001", "humid thunderstorms", 31},
       {"60601", "lake-effect wind", 24}};
  for (const auto& d : kData) {
    json::Object blob;
    blob["forecast"] = d.forecast;
    blob["high"] = d.high;
    LW_CHECK(weather_co
                 .PublishData(universe,
                              std::string("weather.com/by-zip/") + d.zip +
                                  ".json",
                              json::Value(blob))
                 .ok());
  }
  json::Object alerts;
  alerts["text"] = "none";
  LW_CHECK(weather_co
               .PublishData(universe, "weather.com/alerts.json",
                            json::Value(alerts))
               .ok());

  BrowserConfig bconfig;
  bconfig.fetches_per_page = universe.fetches_per_page();
  Browser browser(
      std::make_unique<InProcessPirChannel>(universe.code_store()),
      std::make_unique<InProcessPirChannel>(universe.data_store()),
      bconfig);

  // First visit: no postal code cached yet.
  auto page = browser.Visit("weather.com");
  std::printf("--- first visit (no postal code) ---\n%s\n",
              page.ok() ? page->text.c_str()
                        : page.status().ToString().c_str());

  // The user "types in" their postal code; the page caches it locally.
  browser.local_storage("weather.com").Set("postal_code", "94703");
  page = browser.Visit("weather.com");
  std::printf("--- after caching postal_code=94703 ---\n%s\n",
              page.ok() ? page->text.c_str()
                        : page.status().ToString().c_str());

  // Moving to Chicago changes only CLIENT state.
  browser.local_storage("weather.com").Set("postal_code", "60601");
  page = browser.Visit("weather.com");
  std::printf("--- after caching postal_code=60601 ---\n%s\n",
              page.ok() ? page->text.c_str()
                        : page.status().ToString().c_str());

  std::printf("every visit performed exactly %d private data fetches — the "
              "CDN cannot tell the three users apart.\n",
              universe.fetches_per_page());
  return 0;
}
