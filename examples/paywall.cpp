// Paywalls and access control (paper §3.3–3.4).
//
// The publisher encrypts premium data blobs under per-epoch content keys;
// the CDN stores ciphertext only and never learns who can read what.
// Subscribers get epoch keys out-of-band; revocation = key rotation.
//
// Build & run:  ./build/examples/paywall
#include <cstdio>

#include "util/check.h"

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"

namespace {

lw::lightweb::Browser MakeBrowser(const lw::lightweb::Universe& universe) {
  lw::lightweb::BrowserConfig config;
  config.fetches_per_page = universe.fetches_per_page();
  return lw::lightweb::Browser(
      std::make_unique<lw::lightweb::InProcessPirChannel>(
          universe.code_store()),
      std::make_unique<lw::lightweb::InProcessPirChannel>(
          universe.data_store()),
      config);
}

void Show(const char* who, lw::Result<lw::lightweb::RenderedPage> page) {
  std::printf("--- %s ---\n%s\n\n", who,
              page.ok() ? page->text.c_str()
                        : page.status().ToString().c_str());
}

}  // namespace

int main() {
  using namespace lw;
  using namespace lw::lightweb;

  UniverseConfig config;
  config.name = "paywalled";
  config.code_domain_bits = 10;
  config.code_blob_size = 4096;
  config.data_domain_bits = 14;
  config.data_blob_size = 768;
  config.fetches_per_page = 2;
  Universe universe(config);

  Publisher times("times-co");
  SiteBuilder site("times.example");
  site.SetSiteName("The Times")
      .AddRoute("/premium/:id", {"times.example/data/premium/{id}.json"},
                "# {{site}} premium\n"
                "{{#if data0.body}}{{data0.body}}{{/if}}"
                "{{^if data0.body}}*** This article is for subscribers. "
                "***{{/if}}\n");
  if (!times.PublishSite(universe, site).ok()) return 1;

  json::Object article;
  article["body"] = "Exclusive: lightweb ships margin notes nobody logs.";
  LW_CHECK(times
               .PublishProtectedData(universe,
                                     "times.example/data/premium/1.json",
                                     json::Value(article))
               .ok());
  const std::uint32_t epoch1 = times.keyring().current_epoch();

  // A non-subscriber fetches the blob (the CDN serves it — it cannot tell
  // subscribers apart) but cannot decrypt.
  Browser visitor = MakeBrowser(universe);
  Show("anonymous visitor", visitor.Visit("times.example/premium/1"));

  // A subscriber obtained the epoch key when signing up (outside lightweb).
  Browser subscriber = MakeBrowser(universe);
  subscriber.keyring("times.example")
      .AddEpochKey(epoch1, times.IssueClientKey(epoch1));
  Show("subscriber", subscriber.Visit("times.example/premium/1"));

  // The publisher rotates epochs (revoking lapsed subscriptions) and posts
  // a new article.
  times.keyring().RotateEpoch();
  json::Object article2;
  article2["body"] = "Exclusive #2: written after the key rotation.";
  LW_CHECK(times
               .PublishProtectedData(universe,
                                     "times.example/data/premium/2.json",
                                     json::Value(article2))
               .ok());

  Show("lapsed subscriber, old article (still readable)",
       subscriber.Visit("times.example/premium/1"));
  Show("lapsed subscriber, NEW article (revoked)",
       subscriber.Visit("times.example/premium/2"));

  // Renewal: the publisher issues the current epoch key.
  const std::uint32_t epoch2 = times.keyring().current_epoch();
  subscriber.keyring("times.example")
      .AddEpochKey(epoch2, times.IssueClientKey(epoch2));
  Show("renewed subscriber, NEW article",
       subscriber.Visit("times.example/premium/2"));

  std::printf("Throughout, the CDN stored only ciphertext and saw only "
              "fixed-size private-GETs.\n");
  return 0;
}
