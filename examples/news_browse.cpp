// A full lightweb browsing session (paper §3.2, Figure 1).
//
// A news publisher pushes a code blob and data blobs into a universe; a
// lightweb browser connects, fetches the code blob once, then renders pages
// with a FIXED number of data-blob private-GETs per page — the network
// observer sees identical traffic whether the user reads African headlines
// or the dog-show calendar.
//
// Build & run:  ./build/examples/news_browse
#include <cstdio>

#include "util/check.h"

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"

int main() {
  using namespace lw;
  using namespace lw::lightweb;

  UniverseConfig config;
  config.name = "demo";
  config.code_domain_bits = 12;
  config.code_blob_size = 8192;
  config.data_domain_bits = 16;
  config.data_blob_size = 1024;
  config.fetches_per_page = 5;  // the paper's example budget
  Universe universe(config);

  // ---- Publisher side -----------------------------------------------
  Publisher planet("planet-media");
  SiteBuilder site("planet.com");
  site.SetSiteName("The Daily Planet")
      .SetStyle("serif")
      .AddRoute("/world/:region", {"planet.com/data/world/{region}.json"},
                "# {{site}} / World / {{region}}\n\n"
                "{{#each data0.headlines}}"
                "* [{{.title}}]({{.link}})\n"
                "{{/each}}\n[back to front page](planet.com/)")
      .AddRoute("/story/:id", {"planet.com/data/story/{id}.json"},
                "# {{data0.title}}\n\n{{data0.body}}\n\n"
                "[front page](planet.com/)")
      .AddRoute("/*rest", {"planet.com/data/front.json"},
                "# {{site}}\n\nSections:\n"
                "{{#each data0.sections}}"
                "* [{{.}}](planet.com/world/{{.}})\n"
                "{{/each}}");
  if (!planet.PublishSite(universe, site).ok()) return 1;

  json::Object front;
  front["sections"] = json::Array{"africa", "europe", "americas"};
  LW_CHECK(planet
               .PublishData(universe, "planet.com/data/front.json",
                            json::Value(front))
               .ok());

  for (const char* region : {"africa", "europe", "americas"}) {
    json::Array headlines;
    for (int i = 0; i < 3; ++i) {
      json::Object h;
      h["title"] = std::string(region) + " headline #" + std::to_string(i);
      h["link"] =
          "planet.com/story/" + std::string(region) + std::to_string(i);
      headlines.push_back(json::Value(h));
    }
    json::Object page;
    page["headlines"] = std::move(headlines);
    LW_CHECK(planet
                 .PublishData(universe,
                              "planet.com/data/world/" +
                                  std::string(region) + ".json",
                              json::Value(page))
                 .ok());
    for (int i = 0; i < 3; ++i) {
      json::Object story;
      story["title"] =
          std::string(region) + " headline #" + std::to_string(i);
      story["body"] = "Reporting live from " + std::string(region) + "...";
      LW_CHECK(planet
                   .PublishData(universe,
                                "planet.com/data/story/" +
                                    std::string(region) +
                                    std::to_string(i) + ".json",
                                json::Value(story))
                   .ok());
    }
  }
  std::printf("universe '%s': %zu pages across %zu domains\n\n",
              universe.name().c_str(), universe.total_pages(),
              universe.total_domains());

  // ---- Browser side -------------------------------------------------
  BrowserConfig bconfig;
  bconfig.fetches_per_page = universe.fetches_per_page();
  Browser browser(
      std::make_unique<InProcessPirChannel>(universe.code_store()),
      std::make_unique<InProcessPirChannel>(universe.data_store()),
      bconfig);

  // Browse: front page -> section -> story, following rendered links.
  std::string path = "planet.com";
  for (int hop = 0; hop < 3; ++hop) {
    auto page = browser.Visit(path);
    if (!page.ok()) {
      std::printf("visit failed: %s\n", page.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s  [%d real + %d dummy fetches, code %s] ===\n%s\n\n",
                page->full_path.c_str(), page->real_fetches,
                page->dummy_fetches,
                page->code_cache_hit ? "cached" : "fetched",
                page->text.c_str());
    if (page->links.empty()) break;
    path = page->links[0].target;
  }

  std::printf("network observer saw: %llu code-universe queries, "
              "%llu data-universe queries\n",
              static_cast<unsigned long long>(
                  browser.code_channel().observed_queries()),
              static_cast<unsigned long long>(
                  browser.data_channel().observed_queries()));
  std::printf("(= 1 code fetch + exactly %d data fetches per page view — "
              "nothing about WHICH pages)\n",
              universe.fetches_per_page());
  return 0;
}
