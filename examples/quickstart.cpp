// Quickstart: the ZLTP private-GET in ~60 lines.
//
// Spins up a universe store, serves it from TWO logical ZLTP servers (the
// non-colluding pair of the two-server PIR mode), connects a client over
// in-process transports, and fetches a blob — without either server ever
// learning which key was requested.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "util/check.h"

#include "net/transport.h"
#include "zltp/client.h"
#include "zltp/server.h"
#include "zltp/store.h"

int main() {
  using namespace lw;

  // 1. The CDN's content store: a 2^16 DPF domain of 1 KiB fixed blobs.
  zltp::PirStoreConfig config;
  config.domain_bits = 16;
  config.record_size = 1024;
  zltp::PirStore store(config);

  // 2. Publishers upload key-value pairs (keys are arbitrary strings).
  LW_CHECK(store
               .Publish("nytimes.com/2023/06/25/uganda",
                        ToBytes("{\"headline\":\"Lake Victoria rises\"}"))
               .ok());
  LW_CHECK(
      store
          .Publish("wikipedia.org/wiki/PIR",
                   ToBytes("{\"text\":\"Private information retrieval...\"}"))
          .ok());
  LW_CHECK(store
               .Publish("poodleclubofamerica.org/shows",
                        ToBytes("{\"next_show\":\"2026-08-01\"}"))
               .ok());
  std::printf("universe holds %zu blobs (%zu bytes)\n\n",
              store.record_count(), store.stored_bytes());

  // 3. Two logical ZLTP servers. In production these replicas live in
  //    separate trust domains; security holds if at most one is corrupted.
  zltp::ZltpPirServer server0(store, /*role=*/0);
  zltp::ZltpPirServer server1(store, /*role=*/1);

  net::TransportPair link0 = net::CreateInMemoryPair();
  net::TransportPair link1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(link0.b));
  server1.ServeConnectionDetached(std::move(link1.b));

  // 4. A client session negotiates parameters with both servers.
  auto session =
      zltp::PirSession::Establish(
          zltp::EstablishOptions::FromTransports(
      std::move(link0.a), std::move(link1.a)));
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("session: domain 2^%d, blob size %zu B\n\n",
              session->domain_bits(), session->record_size());

  // 5. Private GETs. Each server sees only a pseudorandom DPF key share.
  for (const char* key :
       {"nytimes.com/2023/06/25/uganda", "wikipedia.org/wiki/PIR",
        "no-such-page.example/x"}) {
    auto value = session->PrivateGet(key);
    if (value.ok()) {
      std::printf("GET %-34s -> %s\n", key, ToString(*value).c_str());
    } else {
      std::printf("GET %-34s -> %s\n", key,
                  value.status().ToString().c_str());
    }
  }

  const auto& traffic = session->traffic();
  std::printf("\ntraffic: %llu requests, %llu B up, %llu B down "
              "(every request identical on the wire)\n",
              static_cast<unsigned long long>(traffic.requests),
              static_cast<unsigned long long>(traffic.bytes_sent),
              static_cast<unsigned long long>(traffic.bytes_received));
  session->Close();
  return 0;
}
