// Multiple universes and peering (paper §3.5).
//
// Two CDNs each run a universe and peer with each other: publisher pushes
// to one CDN propagate to the other, and ownership stays consistent. One
// CDN also offers small/medium/large tiers with different fixed blob sizes
// and hence different per-request costs.
//
// Build & run:  ./build/examples/multi_universe
#include <cstdio>

#include "util/check.h"

#include "lightweb/browser.h"
#include "lightweb/cdn.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "pir/two_server.h"

int main() {
  using namespace lw;
  using namespace lw::lightweb;

  // ---- Two CDNs, one universe each, peered --------------------------
  auto small_config = [](std::string name) {
    UniverseConfig c;
    c.name = std::move(name);
    c.code_domain_bits = 10;
    c.code_blob_size = 4096;
    c.data_domain_bits = 14;
    c.data_blob_size = 512;
    c.fetches_per_page = 3;
    return c;
  };

  Cdn akamai("akamai");
  Cdn fastly("fastly");
  auto r_akamai = akamai.CreateUniverse(small_config("main"));
  auto r_fastly = fastly.CreateUniverse(small_config("main"));
  LW_CHECK(r_akamai.ok() && r_fastly.ok());
  Universe* u_akamai = r_akamai.value();
  Universe* u_fastly = r_fastly.value();
  u_akamai->AddPeer(*u_fastly);

  Publisher pub("encyclopedia-co");
  SiteBuilder site("encyclo.example");
  site.SetSiteName("Encyclo")
      .AddRoute("/wiki/:topic", {"encyclo.example/data/{topic}.json"},
                "# {{data0.title}}\n{{data0.summary}}\n");
  LW_CHECK((pub.PublishSite(*u_akamai, site)).ok());
  json::Object entry;
  entry["title"] = "Private information retrieval";
  entry["summary"] = "Fetch a record without revealing which.";
  LW_CHECK(pub.PublishData(*u_akamai, "encyclo.example/data/pir.json",
                           json::Value(entry))
               .ok());

  std::printf("pushed to akamai; fastly now holds %zu pages via peering\n\n",
              u_fastly->total_pages());

  // A user of the OTHER CDN reads the article.
  BrowserConfig bconfig;
  bconfig.fetches_per_page = u_fastly->fetches_per_page();
  Browser browser(
      std::make_unique<InProcessPirChannel>(u_fastly->code_store()),
      std::make_unique<InProcessPirChannel>(u_fastly->data_store()),
      bconfig);
  auto page = browser.Visit("encyclo.example/wiki/pir");
  std::printf("--- read from fastly's universe ---\n%s\n",
              page.ok() ? page->text.c_str()
                        : page.status().ToString().c_str());

  // ---- Cost/coverage tiers on one CDN -------------------------------
  std::printf("\nsmall/medium/large tiers (§3.5): per-request "
              "communication at d=22\n");
  for (auto tier : Cdn::TieredConfigs()) {
    const double total_kib =
        static_cast<double>(pir::TotalCommunicationBytes(
            tier.data_domain_bits, tier.data_blob_size)) /
        1024.0;
    std::printf("  %-7s blob %6zu B  -> %6.1f KiB/request "
                "(+ scan cost grows with blob size)\n",
                tier.name.c_str(), tier.data_blob_size, total_kib);
  }
  std::printf("\nan observer learns WHICH tier a user queries — never which "
              "page within it.\n");
  return 0;
}
