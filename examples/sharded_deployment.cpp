// The §5.2 scaled deployment topology, miniaturized and fully networked:
//
//   client ──ZLTP──► front-end (role 0) ──TCP──► 4 shard data servers
//          ──ZLTP──► front-end (role 1) ──TCP──► 4 shard data servers
//
// Each front-end expands the top of the client's DPF tree once and ships
// sub-tree roots to its shards; every shard scans only its slice. The
// client code is byte-identical to the single-server case.
//
// Build & run:  ./build/examples/sharded_deployment
#include <cstdio>
#include <thread>

#include "net/tcp.h"
#include "pir/keyword.h"
#include "pir/packing.h"
#include "util/timer.h"
#include "zltp/client.h"
#include "zltp/frontend.h"

namespace {

using namespace lw;

struct Replica {
  zltp::ShardTopology topology;
  Bytes keyword_seed;
  pir::KeywordMapper mapper;
  std::vector<std::unique_ptr<zltp::ShardDataServer>> shards;

  explicit Replica(const zltp::ShardTopology& t, Bytes seed)
      : topology(t),
        keyword_seed(std::move(seed)),
        mapper(keyword_seed, t.domain_bits) {
    for (std::size_t s = 0; s < t.shard_count(); ++s) {
      shards.push_back(std::make_unique<zltp::ShardDataServer>(t, s));
    }
  }

  bool Publish(const std::string& key, const std::string& payload) {
    const std::uint64_t index = mapper.IndexOf(key);
    auto record = pir::PackRecord(mapper.Fingerprint(key), ToBytes(payload),
                                  topology.record_size);
    if (!record.ok()) return false;
    const std::size_t shard = index & (topology.shard_count() - 1);
    return shards[shard]->Load(index, *record).ok();
  }

  // Connects the front-end to every shard over real TCP sockets.
  zltp::ShardFanout ConnectShardsOverTcp() {
    std::vector<std::unique_ptr<net::Transport>> links;
    for (auto& shard : shards) {
      auto listener = net::TcpListener::Listen(0);
      std::thread acceptor([&] {
        auto conn = listener->Accept();
        shard->ServeConnectionDetached(std::move(*conn));
      });
      auto conn = net::TcpConnect("127.0.0.1", listener->bound_port());
      acceptor.join();
      links.push_back(std::move(*conn));
    }
    return zltp::ShardFanout(topology, std::move(links));
  }
};

}  // namespace

int main() {
  zltp::ShardTopology topology;
  topology.domain_bits = 16;
  topology.top_bits = 2;  // 4 data servers per logical server
  topology.record_size = 1024;
  const Bytes seed(16, 0x2a);

  // Two logical servers = two replicas in distinct trust domains.
  Replica replica0(topology, seed), replica1(topology, seed);
  int published = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "corpus/doc-" + std::to_string(i);
    const std::string payload =
        "{\"doc\":" + std::to_string(i) + ",\"text\":\"...\"}";
    const bool ok0 = replica0.Publish(key, payload);
    const bool ok1 = replica1.Publish(key, payload);
    published += (ok0 && ok1);
  }
  std::printf("published %d docs across %zu shards per replica\n", published,
              topology.shard_count());
  for (std::size_t s = 0; s < replica0.shards.size(); ++s) {
    std::printf("  shard %zu holds %zu records\n", s,
                replica0.shards[s]->record_count());
  }

  zltp::FrontEndServer frontend0(0, seed, replica0.ConnectShardsOverTcp());
  zltp::FrontEndServer frontend1(1, seed, replica1.ConnectShardsOverTcp());

  net::TransportPair c0 = net::CreateInMemoryPair();
  net::TransportPair c1 = net::CreateInMemoryPair();
  frontend0.ServeConnectionDetached(std::move(c0.b));
  frontend1.ServeConnectionDetached(std::move(c1.b));
  auto session =
      zltp::PirSession::Establish(
          zltp::EstablishOptions::FromTransports(
      std::move(c0.a), std::move(c1.a)));
  if (!session.ok()) {
    std::printf("session: %s\n", session.status().ToString().c_str());
    return 1;
  }

  Stopwatch timer;
  int fetched = 0;
  for (int i = 0; i < 200; i += 37) {
    const std::string key = "corpus/doc-" + std::to_string(i);
    auto value = session->PrivateGet(key);
    if (value.ok()) {
      std::printf("GET %-18s -> %s\n", key.c_str(),
                  ToString(*value).c_str());
      ++fetched;
    }
  }
  std::printf("\n%d private GETs through 2 front-ends x %zu shards in "
              "%.1f ms\n",
              fetched, topology.shard_count(), timer.ElapsedMillis());
  session->Close();
  return 0;
}
