// ZLTP's enclave + ORAM mode of operation (paper §2.2).
//
// A simulated hardware enclave holds the universe in a Path ORAM over
// untrusted host memory. The host relays opaque encrypted requests; its
// entire view is the ORAM access trace — one uniformly random tree path per
// request, independent of the key. Server cost is polylog instead of the
// PIR mode's linear scan, at the price of trusting the enclave hardware.
//
// Build & run:  ./build/examples/enclave_mode
#include <cstdio>

#include "net/transport.h"
#include "oram/enclave.h"
#include "oram/storage.h"
#include "zltp/client.h"
#include "zltp/server.h"

int main() {
  using namespace lw;

  oram::EnclaveConfig config;
  config.capacity = 1024;
  config.value_size = 512;

  oram::MemoryStorage host_memory(
      oram::KvEnclave::RequiredStorageBuckets(config));
  oram::TracingStorage traced(host_memory);  // what the host observes
  oram::KvEnclave enclave(config, traced);

  // Publisher provisions content (via a secure channel in production).
  LW_CHECK(enclave.Put("wiki/Uganda", ToBytes("{\"capital\":\"Kampala\"}")).ok());
  LW_CHECK(enclave.Put("wiki/Chile", ToBytes("{\"capital\":\"Santiago\"}")).ok());
  LW_CHECK(enclave.Put("wiki/Nepal", ToBytes("{\"capital\":\"Kathmandu\"}")).ok());
  std::printf("enclave holds %zu keys; ORAM stash %zu blocks\n\n",
              enclave.key_count(), enclave.stash_size());

  // Serve over ZLTP.
  zltp::ZltpEnclaveServer server(enclave);
  net::TransportPair link = net::CreateInMemoryPair();
  server.ServeConnectionDetached(std::move(link.b));
  auto session = zltp::EnclaveSession::Establish(zltp::EstablishOptions::FromTransports(std::move(link.a)));
  if (!session.ok()) return 1;

  for (const char* key : {"wiki/Uganda", "wiki/Nepal", "wiki/Atlantis"}) {
    traced.ClearTrace();
    auto value = session->PrivateGet(key);
    std::size_t reads = 0, writes = 0;
    for (const auto& ev : traced.trace()) {
      (ev.kind == oram::AccessEvent::Kind::kRead ? reads : writes)++;
    }
    std::printf("GET %-14s -> %-38s | host saw %zu bucket reads + %zu "
                "writes\n",
                key,
                value.ok() ? ToString(*value).c_str()
                           : value.status().ToString().c_str(),
                reads, writes);
  }
  std::printf("\nhits, repeats, and misses produce identical trace shapes — "
              "the ORAM obliviousness guarantee.\n");
  session->Close();
  return 0;
}
