// E3 — §5.1 "Communication".
//
// Paper: the DPF key is ≈ (λ+2)·d for λ=128, d=22; the response bucket is
// 4 KiB; total communication per request is 13.6 KiB including the 2×
// two-server overhead (their key serialization is ~2.8 KiB/key).
//
// Our tree DPF serializes to (λ+2)·d BITS plus an 18-byte header
// (~0.4 KiB at d=22), so our totals are smaller; the shape to reproduce is
// upload = Θ(d) (logarithmic in the key space), download = Θ(record size),
// and the 2× factor from querying two servers.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/transport.h"
#include "zltp/client.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw::bench {
namespace {

void BM_KeyGeneration(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::uint64_t mask = (std::uint64_t{1} << d) - 1;
  std::uint64_t alpha = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pir::MakeIndexQuery(alpha, d));
    alpha = (alpha + 1) & mask;
  }
  state.counters["key_bytes"] =
      static_cast<double>(pir::QueryUploadBytes(d));
}
BENCHMARK(BM_KeyGeneration)->Arg(16)->Arg(22)->Arg(26)
    ->Unit(benchmark::kMicrosecond);

void BM_KeySerialization(benchmark::State& state) {
  const pir::QueryKeys q = pir::MakeIndexQuery(5, 22);
  for (auto _ : state) {
    Bytes wire = q.key0.Serialize();
    auto parsed = dpf::DpfKey::Deserialize(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_KeySerialization)->Unit(benchmark::kMicrosecond);

void PrintReproductionTable() {
  std::printf("\n=== E3: §5.1 communication — reproduction ===\n");
  PrintRule();
  std::printf("%6s %12s %14s %14s %14s\n", "d", "bucket", "upload(KiB)",
              "download(KiB)", "total(KiB)");
  PrintRule();
  for (const int d : {16, 18, 20, 22, 24, 26}) {
    for (const std::size_t bucket : {std::size_t{4096}}) {
      const double up = 2.0 * pir::QueryUploadBytes(d) / 1024.0;
      const double down = 2.0 * bucket / 1024.0;
      std::printf("%6d %10zu B %14.2f %14.2f %14.2f\n", d, bucket, up, down,
                  up + down);
    }
  }
  PrintRule();
  // Bucket-size sweep at the paper's d=22.
  for (const std::size_t bucket :
       {std::size_t{1024}, std::size_t{4096}, std::size_t{16384}}) {
    const double total =
        static_cast<double>(pir::TotalCommunicationBytes(22, bucket)) /
        1024.0;
    std::printf("d=22, bucket %5zu B -> total %6.2f KiB\n", bucket, total);
  }
  PrintRule();
  const double ours =
      static_cast<double>(pir::TotalCommunicationBytes(22, 4096)) / 1024.0;
  std::printf("paper (d=22, 4 KiB bucket, 2 servers): 13.6 KiB/request\n");
  std::printf("ours  (d=22, 4 KiB bucket, 2 servers): %4.1f KiB/request\n",
              ours);
  std::printf("  (smaller because our keys are (λ+2)d bits = %zu B vs their "
              "~2.8 KiB serialization;\n   upload stays logarithmic in the "
              "key space, download linear in the value — the paper's "
              "claims)\n\n",
              pir::QueryUploadBytes(22));
}

// Analytic totals above; this section runs a real session over in-memory
// transports and reads the bytes that actually crossed the wire from the
// obs registry (lw_client_* counters mirror every session's accounting),
// so framing, hellos and request ids are included.
void PrintMeasuredTrafficSection() {
  zltp::PirStoreConfig config;
  config.domain_bits = 12;  // keep the store small; upload is Θ(d) anyway
  config.record_size = 4096;
  config.keyword_seed = Bytes(16, 0x3c);
  zltp::PirStore store(config);
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back("bench/page" + std::to_string(i));
    (void)store.Publish(keys.back(), Bytes(64, 0x61));
  }

  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  const obs::MetricsSnapshot before = obs::Registry::Default().Snapshot();
  auto session = zltp::PirSession::Establish(
      zltp::EstablishOptions::FromTransports(std::move(p0.a),
                                             std::move(p1.a)));
  if (!session.ok()) {
    std::printf("measured-traffic section skipped: %s\n",
                session.status().ToString().c_str());
    return;
  }
  auto batch = session->PrivateGetBatch(keys, /*extra_dummies=*/2);
  session->Close();
  const obs::MetricsSnapshot after = obs::Registry::Default().Snapshot();

  auto counter_delta = [&](const std::string& name) -> std::uint64_t {
    std::uint64_t b = 0, a = 0;
    for (const obs::CounterSnapshot& c : before.counters) {
      if (c.name == name) b = c.value;
    }
    for (const obs::CounterSnapshot& c : after.counters) {
      if (c.name == name) a = c.value;
    }
    return a - b;
  };

  const std::uint64_t sent = counter_delta("lw_client_bytes_sent_total");
  const std::uint64_t received =
      counter_delta("lw_client_bytes_received_total");
  const std::uint64_t requests = counter_delta("lw_client_requests_total");

  std::printf("=== E3b: measured wire traffic (obs registry snapshot) ===\n");
  PrintRule();
  std::printf("page load: %zu keys + 2 dummies, d=%d, %zu B records, "
              "two servers\n",
              keys.size(), config.domain_bits, config.record_size);
  std::printf("requests completed : %llu%s\n",
              static_cast<unsigned long long>(requests),
              batch.ok() ? "" : "  (batch FAILED)");
  std::printf("bytes sent         : %8llu  (%.2f KiB/request incl. hello "
              "+ framing)\n",
              static_cast<unsigned long long>(sent),
              requests ? sent / 1024.0 / static_cast<double>(requests) : 0.0);
  std::printf("bytes received     : %8llu  (%.2f KiB/request)\n",
              static_cast<unsigned long long>(received),
              requests ? received / 1024.0 / static_cast<double>(requests)
                       : 0.0);
  std::printf("analytic (same d/bucket): upload %.2f KiB, download %.2f KiB "
              "per request\n",
              2.0 * pir::QueryUploadBytes(config.domain_bits) / 1024.0,
              2.0 * static_cast<double>(config.record_size) / 1024.0);
  std::printf("retries/redials    : %llu/%llu (loopback — expect 0/0)\n",
              static_cast<unsigned long long>(
                  counter_delta("lw_client_retries_total")),
              static_cast<unsigned long long>(
                  counter_delta("lw_client_redials_total")));
  PrintRule();
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  lw::bench::PrintMeasuredTrafficSection();
  return 0;
}
