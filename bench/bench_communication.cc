// E3 — §5.1 "Communication".
//
// Paper: the DPF key is ≈ (λ+2)·d for λ=128, d=22; the response bucket is
// 4 KiB; total communication per request is 13.6 KiB including the 2×
// two-server overhead (their key serialization is ~2.8 KiB/key).
//
// Our tree DPF serializes to (λ+2)·d BITS plus an 18-byte header
// (~0.4 KiB at d=22), so our totals are smaller; the shape to reproduce is
// upload = Θ(d) (logarithmic in the key space), download = Θ(record size),
// and the 2× factor from querying two servers.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace lw::bench {
namespace {

void BM_KeyGeneration(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const std::uint64_t mask = (std::uint64_t{1} << d) - 1;
  std::uint64_t alpha = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pir::MakeIndexQuery(alpha, d));
    alpha = (alpha + 1) & mask;
  }
  state.counters["key_bytes"] =
      static_cast<double>(pir::QueryUploadBytes(d));
}
BENCHMARK(BM_KeyGeneration)->Arg(16)->Arg(22)->Arg(26)
    ->Unit(benchmark::kMicrosecond);

void BM_KeySerialization(benchmark::State& state) {
  const pir::QueryKeys q = pir::MakeIndexQuery(5, 22);
  for (auto _ : state) {
    Bytes wire = q.key0.Serialize();
    auto parsed = dpf::DpfKey::Deserialize(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_KeySerialization)->Unit(benchmark::kMicrosecond);

void PrintReproductionTable() {
  std::printf("\n=== E3: §5.1 communication — reproduction ===\n");
  PrintRule();
  std::printf("%6s %12s %14s %14s %14s\n", "d", "bucket", "upload(KiB)",
              "download(KiB)", "total(KiB)");
  PrintRule();
  for (const int d : {16, 18, 20, 22, 24, 26}) {
    for (const std::size_t bucket : {std::size_t{4096}}) {
      const double up = 2.0 * pir::QueryUploadBytes(d) / 1024.0;
      const double down = 2.0 * bucket / 1024.0;
      std::printf("%6d %10zu B %14.2f %14.2f %14.2f\n", d, bucket, up, down,
                  up + down);
    }
  }
  PrintRule();
  // Bucket-size sweep at the paper's d=22.
  for (const std::size_t bucket :
       {std::size_t{1024}, std::size_t{4096}, std::size_t{16384}}) {
    const double total =
        static_cast<double>(pir::TotalCommunicationBytes(22, bucket)) /
        1024.0;
    std::printf("d=22, bucket %5zu B -> total %6.2f KiB\n", bucket, total);
  }
  PrintRule();
  const double ours =
      static_cast<double>(pir::TotalCommunicationBytes(22, 4096)) / 1024.0;
  std::printf("paper (d=22, 4 KiB bucket, 2 servers): 13.6 KiB/request\n");
  std::printf("ours  (d=22, 4 KiB bucket, 2 servers): %4.1f KiB/request\n",
              ours);
  std::printf("  (smaller because our keys are (λ+2)d bits = %zu B vs their "
              "~2.8 KiB serialization;\n   upload stays logarithmic in the "
              "key space, download linear in the value — the paper's "
              "claims)\n\n",
              pir::QueryUploadBytes(22));
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
