// E9 — §5.1 keyword-collision ablation.
//
// Paper: "By setting the output domain to size 2^22, we guarantee that if
// there are roughly 2^20 key-value pairs ... the probability of collision
// is at most 1/4 when the ZLTP server is almost at capacity (if this
// happens, then the publisher can simply select another key name). We could
// decrease this probability by ... using cuckoo hashing and probing several
// locations per request."
//
// We measure (a) the empirical collision probability for a fresh key at
// several load factors — expected ≈ load factor, so ≤ 1/4 at the paper's
// capacity — and (b) how much further cuckoo hashing stretches capacity,
// at the price of 2 private-GETs per lookup.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "pir/cuckoo.h"
#include "pir/keyword.h"

namespace lw::bench {
namespace {

void BM_DirectRegister(benchmark::State& state) {
  const Bytes seed(16, 1);
  pir::KeywordRegistry reg(seed, 20);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.Register("key-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_DirectRegister)->Unit(benchmark::kMicrosecond);

void BM_CuckooInsert(benchmark::State& state) {
  const Bytes seed(16, 1);
  pir::CuckooIndex cuckoo(seed, 20);
  int i = 0;
  for (auto _ : state) {
    if (cuckoo.LoadFactor() > 0.45) {
      // Stay below the 2-choice threshold: past ~0.5 every insert runs a
      // full failing eviction chain, which measures the failure path
      // rather than insertion.
      state.PauseTiming();
      cuckoo = pir::CuckooIndex(seed, 20);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(cuckoo.Insert("key-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_CuckooInsert)->Unit(benchmark::kMicrosecond);

void PrintReproductionTable() {
  std::printf("\n=== E9: §5.1 collision handling — ablation ===\n");
  constexpr int kDomainBits = 16;  // scaled from the paper's 2^22
  const std::uint64_t domain = 1u << kDomainBits;

  PrintRule();
  std::printf("%14s %24s %24s\n", "load factor", "direct: P[new key "
              "collides]", "cuckoo: insert failures");
  PrintRule();

  for (const double load : {0.0625, 0.125, 0.25, 0.40, 0.49}) {
    const auto target = static_cast<std::uint64_t>(load * domain);

    // Direct hashing: fill to the load factor, then probe fresh keys.
    const Bytes seed(16, 0x33);
    pir::KeywordRegistry reg(seed, kDomainBits);
    std::uint64_t i = 0;
    while (reg.size() < target) {
      (void)reg.Register("fill-" + std::to_string(i++));
    }
    int collided = 0;
    constexpr int kProbes = 2000;
    for (int p = 0; p < kProbes; ++p) {
      // Non-mutating probe: would this fresh key land on an occupied slot?
      const std::uint64_t idx =
          reg.mapper().IndexOf("probe-" + std::to_string(p));
      if (reg.KeyAt(idx).ok()) ++collided;
    }
    const double p_collide = static_cast<double>(collided) / kProbes;

    // Cuckoo: insert the same number of keys and count failures.
    pir::CuckooIndex cuckoo(seed, kDomainBits);
    std::uint64_t failures = 0;
    for (std::uint64_t k = 0; k < target; ++k) {
      if (!cuckoo.Insert("fill-" + std::to_string(k)).ok()) ++failures;
    }

    std::printf("%14.3f %24.3f %21llu/%llu\n", load, p_collide,
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(target));
  }
  PrintRule();
  std::printf(
      "paper claim at capacity (2^20 keys in 2^22 slots = load 0.25):\n"
      "  collision probability <= 1/4 — matches the direct-hash column;\n"
      "  cuckoo hashing eliminates publish-time failures up to ~0.5 load\n"
      "  at the cost of probing 2 locations per private-GET.\n\n");
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
