// E6 — §5.2 "Distributing DPF evaluation".
//
// Paper: a front-end server evaluates the top of the client's DPF tree once
// and sends each data server its sub-tree root; "the cost for the data
// server of completing the DPF evaluation from that point is the same as
// the cost of evaluating the DPF key for the smaller domain."
//
// We verify that claim directly: per-data-server DPF time with S shards
// should equal a full evaluation over a domain 2^d / S, and the front-end's
// top-of-tree expansion should be cheap compared to the data servers' work.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace lw::bench {
namespace {

constexpr int kDomainBits = 22;

void BM_FrontEndSplit(benchmark::State& state) {
  const int top_bits = static_cast<int>(state.range(0));
  const dpf::KeyPair pair = dpf::Generate(99, kDomainBits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpf::SplitForShards(pair.key0, top_bits));
  }
  state.counters["shards"] = static_cast<double>(1 << top_bits);
}
BENCHMARK(BM_FrontEndSplit)->Arg(0)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_DataServerSubtreeEval(benchmark::State& state) {
  const int top_bits = static_cast<int>(state.range(0));
  const dpf::KeyPair pair = dpf::Generate(99, kDomainBits);
  const auto shards = dpf::SplitForShards(pair.key0, top_bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpf::EvalSubtree(shards[0]));
  }
  state.counters["per_server_leaves"] =
      static_cast<double>(std::uint64_t{1} << (kDomainBits - top_bits));
}
BENCHMARK(BM_DataServerSubtreeEval)->Arg(0)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void PrintReproductionTable() {
  std::printf("\n=== E6: §5.2 distributed DPF evaluation — reproduction "
              "===\n");
  const dpf::KeyPair pair = dpf::Generate(4242, kDomainBits);

  // Reference: small-domain full evaluations to compare data-server cost
  // against (the paper's claim of equality).
  PrintRule();
  std::printf("%8s %14s %18s %22s\n", "shards", "frontend(ms)",
              "per-server(ms)", "small-domain ref(ms)");
  PrintRule();
  for (const int top : {0, 2, 4, 6, 8}) {
    Stopwatch split_timer;
    const auto shards = dpf::SplitForShards(pair.key0, top);
    const double frontend_ms = split_timer.ElapsedMillis();

    // Average a data server's sub-tree evaluation over a few shards.
    Stopwatch eval_timer;
    const int samples = std::min<int>(4, static_cast<int>(shards.size()));
    for (int s = 0; s < samples; ++s) {
      benchmark::DoNotOptimize(dpf::EvalSubtree(shards[static_cast<std::size_t>(s)]));
    }
    const double per_server_ms = eval_timer.ElapsedMillis() / samples;

    // Reference: full DPF evaluation over the equivalent smaller domain.
    const dpf::KeyPair small = dpf::Generate(1, kDomainBits - top);
    Stopwatch ref_timer;
    benchmark::DoNotOptimize(dpf::EvalFull(small.key0));
    const double ref_ms = ref_timer.ElapsedMillis();

    std::printf("%8d %14.2f %18.2f %22.2f\n", 1 << top, frontend_ms,
                per_server_ms, ref_ms);
  }
  PrintRule();
  std::printf(
      "claims: per-server cost tracks the small-domain reference (paper:\n"
      "\"the same as the cost of evaluating the DPF key for the smaller\n"
      "domain\"), and total DPF work stays ~constant while per-server work\n"
      "drops by the shard count.\n\n");
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
