// E8 — §2.2 modes-of-operation ablation.
//
// The paper's qualitative claim: the PIR mode pays a per-request linear
// scan over all stored data, while the enclave+ORAM mode is polylogarithmic
// ("appealingly low server-side computational costs: both polylogarithmic
// in the number of key-value pairs") at the price of hardware trust.
//
// We measure per-access server cost for both modes as the store grows and
// check the shapes: PIR cost grows ~2x per doubling; ORAM cost grows
// ~log(N); the curves cross.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "oram/enclave.h"
#include "oram/storage.h"

namespace lw::bench {
namespace {

constexpr std::size_t kValueSize = 256;

int DomainBitsFor(std::size_t n) {
  int d = 2;
  while ((std::size_t{1} << d) < 4 * n) ++d;
  return d;
}

void BM_PirModeAccess(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int d = DomainBitsFor(n);
  const pir::BlobDatabase db = BuildShard(d, kValueSize, n);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureOneRequest(db, d, rng));
  }
  state.counters["kv_pairs"] = static_cast<double>(n);
}
BENCHMARK(BM_PirModeAccess)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_EnclaveModeAccess(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  oram::EnclaveConfig config;
  config.capacity = n;
  config.value_size = kValueSize;
  oram::MemoryStorage storage(oram::KvEnclave::RequiredStorageBuckets(config));
  oram::KvEnclave enclave(config, storage);
  for (std::size_t i = 0; i < n; ++i) {
    LW_CHECK(enclave.Put("key/" + std::to_string(i), Bytes(64, 1)).ok());
  }
  oram::EnclaveClient client(enclave.public_key());
  Rng rng(2);
  for (auto _ : state) {
    const std::string key = "key/" + std::to_string(rng.UniformInt(n));
    auto resp = enclave.HandleEncryptedRequest(client.SealGetRequest(key));
    benchmark::DoNotOptimize(resp);
  }
  state.counters["kv_pairs"] = static_cast<double>(n);
}
BENCHMARK(BM_EnclaveModeAccess)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void PrintReproductionTable() {
  std::printf("\n=== E8: §2.2 PIR vs enclave+ORAM server cost — ablation "
              "===\n");
  PrintRule();
  std::printf("%12s %16s %20s %14s\n", "kv pairs", "pir(ms/req)",
              "enclave-oram(ms/req)", "pir/oram");
  PrintRule();

  double first_pir = 0, last_pir = 0, first_oram = 0, last_oram = 0;
  for (const std::size_t n :
       {std::size_t{1} << 10, std::size_t{1} << 12, std::size_t{1} << 14,
        std::size_t{1} << 16}) {
    // PIR.
    const int d = DomainBitsFor(n);
    const pir::BlobDatabase db = BuildShard(d, kValueSize, n);
    const RequestCost pir_cost = MeasureRequests(db, d, 5);

    // Enclave + ORAM.
    oram::EnclaveConfig config;
    config.capacity = n;
    config.value_size = kValueSize;
    oram::MemoryStorage storage(
        oram::KvEnclave::RequiredStorageBuckets(config));
    oram::KvEnclave enclave(config, storage);
    for (std::size_t i = 0; i < n; ++i) {
      LW_CHECK(enclave.Put("key/" + std::to_string(i), Bytes(64, 1)).ok());
    }
    oram::EnclaveClient client(enclave.public_key());
    Rng rng(3);
    constexpr int kAccesses = 50;
    Stopwatch timer;
    for (int i = 0; i < kAccesses; ++i) {
      const std::string key = "key/" + std::to_string(rng.UniformInt(n));
      auto resp = enclave.HandleEncryptedRequest(client.SealGetRequest(key));
      LW_CHECK(resp.ok());
    }
    const double oram_ms = timer.ElapsedMillis() / kAccesses;

    if (first_pir == 0) {
      first_pir = pir_cost.total_ms();
      first_oram = oram_ms;
    }
    last_pir = pir_cost.total_ms();
    last_oram = oram_ms;
    std::printf("%12zu %16.3f %20.3f %14.1f\n", n, pir_cost.total_ms(),
                oram_ms, pir_cost.total_ms() / oram_ms);
  }
  PrintRule();
  std::printf("shape checks (1k -> 64k pairs, a 64x growth):\n");
  std::printf("  PIR cost grew %.1fx (linear scan: expect ~64x minus fixed "
              "overheads)\n",
              last_pir / first_pir);
  std::printf("  ORAM cost grew %.1fx (polylog: expect small constant)\n",
              last_oram / first_oram);
  std::printf("  paper: \"the server-side linear scan ... limits "
              "performance\" vs \"polylogarithmic\" enclave mode\n\n");
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
