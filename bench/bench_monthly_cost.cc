// E7 — §4 "Who pays?" user-cost estimates.
//
// Paper: "For users who make on average 50 daily page requests where each
// page request results in 5 GET requests for data blobs, we estimate that
// the monthly per-user cost for a universe of 360M data blobs ... to be
// roughly $15 (comparable to the cost of a Netflix membership)." Plus the
// Google Fi comparisons and the looking-forward cost projection.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "costmodel/costmodel.h"

namespace lw::bench {
namespace {

void BM_CostModelEvaluation(benchmark::State& state) {
  cost::ShardMeasurement shard;
  shard.dpf_ms = 64;
  shard.scan_ms = 103;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost::EstimateScale(
        cost::C4Dataset(), shard, cost::InstanceSpec{}, 4096));
  }
}
BENCHMARK(BM_CostModelEvaluation)->Unit(benchmark::kNanosecond);

void PrintReproductionTable() {
  std::printf("\n=== E7: §4 monthly user cost — reproduction ===\n");

  cost::ShardMeasurement paper_shard;
  paper_shard.dpf_ms = 64;
  paper_shard.scan_ms = 103;
  const auto c4 = cost::EstimateScale(cost::C4Dataset(), paper_shard,
                                      cost::InstanceSpec{}, 4096);

  PrintRule();
  std::printf("%12s %12s %14s %16s\n", "pages/day", "GETs/page",
              "GETs/month", "monthly cost");
  PrintRule();
  for (const double pages : {10.0, 50.0, 100.0}) {
    for (const int gets : {3, 5}) {
      cost::UserProfile user;
      user.pages_per_day = pages;
      user.data_gets_per_page = gets;
      const double monthly = cost::MonthlyUserCostUsd(c4, user);
      std::printf("%12.0f %12d %14.0f %15.2f$\n", pages, gets,
                  pages * gets * 30, monthly);
    }
  }
  PrintRule();

  cost::UserProfile paper_user;  // 50 pages, 5 GETs, 30 days
  const double monthly = cost::MonthlyUserCostUsd(c4, paper_user);
  std::printf("paper's profile (50 pages/day x 5 GETs): $%.2f/month "
              "(paper: ~$15, \"a Netflix membership\")\n",
              monthly);

  std::printf("\nGoogle Fi comparison (§5.2):\n");
  std::printf("  22.4 MiB NYT homepage over $10/GiB Fi: $%.3f (paper "
              "$0.218)\n",
              cost::GoogleFiCostForBytes(cost::kNytHomepageMib * 1024 *
                                         1024));
  std::printf("  4 KiB over Fi: $%.6f vs ZLTP $%.4f -> ZLTP is %.0fx more "
              "expensive (paper: ~2 orders of magnitude)\n",
              cost::GoogleFiCostForBytes(4096), c4.usd_per_request_system,
              c4.usd_per_request_system / cost::GoogleFiCostForBytes(4096));

  std::printf("\nLooking forward (compute gets 16x cheaper / 5 years):\n");
  for (const double years : {0.0, 5.0, 10.0}) {
    std::printf("  in %4.0f years: $%.6f per request\n", years,
                cost::ProjectedRequestCostUsd(c4.usd_per_request_system,
                                              years));
  }
  std::printf("  paper: \"in 5 years ... the dollar cost of a ZLTP request "
              "[could] drop by an order of magnitude\"\n\n");
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
