// E11 (repo ablation) — saturating server throughput.
//
// The other benches time isolated server components; this one measures the
// quantity the batch engine actually optimizes: sustained requests/second
// of a REAL server under closed-loop load, and the latency the batching
// deadline buys it. Per scenario it stands up both logical PIR servers on
// ephemeral TCP ports, connects closed-loop clients (each issues its next
// private GET the moment the previous one completes — the standard
// saturation harness shape), and sweeps the batch close deadline
// (--max-wait) crossed with pipelined vs serial scheduling, reporting
//
//   req/s sustained, p50/p95/p99 request latency, mean batch occupancy
//
// per scenario into BENCH_throughput.json so CI can track the trajectory
// (tools/bench/compare_bench.py fails on >15% req/s regressions).
//
// Scenarios cover both serving models (docs/ARCHITECTURE.md): the blocking
// thread-per-connection path and the epoll reactor, including a
// high-connection reactor scenario (default 1024 concurrent connections,
// --conns=N) that a thread-per-connection server could only match with a
// thousand kernel threads. Two sharded front-end scenarios (frontend/*)
// stand up the full §5.2 deployment — FrontEndServers over shard data
// servers, all multiplexed on one reactor — and A/B one client against
// many so CI can assert the shard fan-out pipelines instead of
// serializing.
//
// Flags: --smoke (CI-sized run), --threads=N (server scan/expand pool),
// --json=PATH (default BENCH_throughput.json), --clients=N, --requests=N
// (per client), --conns=N (high-connection scenario size).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "bench_util.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "pir/xor_kernel.h"
#include "util/alloc.h"
#include "util/check.h"
#include "zltp/client.h"
#include "zltp/frontend.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw::bench {
namespace {

struct ThroughputParams {
  int domain_bits = 16;
  std::size_t record_size = 1024;
  std::size_t published = 2000;
  int clients = 8;
  int requests_per_client = 40;  // per scenario, after warmup
  int warmup_per_client = 4;
  int threads = 1;
  // Total concurrent TCP connections for the high-connection reactor
  // scenario (each closed-loop client holds one connection per logical
  // server, so clients = conns / 2).
  int high_conns = 1024;
};

struct Scenario {
  std::string name;
  bool pipelined = true;
  std::chrono::milliseconds max_wait{2};
  // true: one epoll reactor serves both logical servers. false: blocking
  // thread-per-connection (the A/B baseline).
  bool reactor = false;
  // Per-scenario overrides (0 = take the ThroughputParams value). The
  // high-connection scenario trades requests-per-client for client count
  // so total work stays bounded while concurrency scales.
  int clients_override = 0;
  int requests_override = 0;
  // true: each logical server is a FrontEndServer over 2^top_bits shard
  // data servers (paper §5.2) instead of a monolithic ZltpPirServer —
  // measures the multiplexed shard fan-out, not the batch engine.
  bool frontend = false;
};

const char* ServeName(const Scenario& s) {
  if (s.frontend) return "frontend";
  return s.reactor ? "reactor" : "threaded";
}

struct ScenarioResult {
  Scenario scenario;
  std::uint64_t completed = 0;
  double elapsed_s = 0;
  double req_per_s = 0;
  double ns_per_op = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double avg_batch = 0;
  std::uint64_t batches = 0;
};

double PercentileMs(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

// Accepts connections until the listener closes, handing each to the
// server's detached per-connection serving.
template <typename Server>
std::thread AcceptLoop(net::TcpListener& listener, Server& server) {
  return std::thread([&listener, &server] {
    for (;;) {
      auto transport = listener.Accept();
      if (!transport.ok()) return;  // listener closed: scenario over
      server.ServeConnectionDetached(std::move(*transport));
    }
  });
}

// Closed-loop load shared by every scenario: `params.clients` threads each
// hold one connection per logical server and issue their next private GET
// the moment the previous one completes. All connect + warm up first, then
// start measuring together so the servers see full concurrency for the
// whole window; `at_start` runs at that barrier (stats snapshots).
struct LoadResult {
  std::vector<double> sorted_ms;  // per-request latencies, ascending
  double elapsed_s = 0;
  std::uint64_t errors = 0;
};

LoadResult DriveClosedLoopClients(std::uint16_t port0, std::uint16_t port1,
                                  int domain_bits,
                                  const ThroughputParams& params,
                                  const std::function<void()>& at_start) {
  std::atomic<bool> start{false};
  std::atomic<int> ready{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<double>> latencies_ms(
      static_cast<std::size_t>(params.clients));
  std::vector<std::thread> clients;
  for (int c = 0; c < params.clients; ++c) {
    clients.emplace_back([&, c] {
      auto t0 = net::TcpConnect("127.0.0.1", port0);
      auto t1 = net::TcpConnect("127.0.0.1", port1);
      if (!t0.ok() || !t1.ok()) {
        ++errors;
        ++ready;
        return;
      }
      auto session = zltp::PirSession::Establish(
          zltp::EstablishOptions::FromTransports(std::move(*t0),
                                                 std::move(*t1)));
      if (!session.ok()) {
        ++errors;
        ++ready;
        return;
      }
      Rng rng(static_cast<std::uint64_t>(c) + 1000);
      const std::uint64_t domain = std::uint64_t{1} << domain_bits;
      for (int i = 0; i < params.warmup_per_client; ++i) {
        if (!session->PrivateGetIndex(rng.UniformInt(domain)).ok()) ++errors;
      }
      ++ready;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& mine = latencies_ms[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(params.requests_per_client));
      for (int i = 0; i < params.requests_per_client; ++i) {
        const auto before = std::chrono::steady_clock::now();
        if (!session->PrivateGetIndex(rng.UniformInt(domain)).ok()) {
          ++errors;
          continue;
        }
        const auto after = std::chrono::steady_clock::now();
        mine.push_back(
            std::chrono::duration<double, std::milli>(after - before)
                .count());
      }
      session->Close();
    });
  }
  while (ready.load() < params.clients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (at_start) at_start();
  const auto bench_start = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const auto bench_end = std::chrono::steady_clock::now();

  LoadResult load;
  for (auto& per_client : latencies_ms) {
    load.sorted_ms.insert(load.sorted_ms.end(), per_client.begin(),
                          per_client.end());
  }
  std::sort(load.sorted_ms.begin(), load.sorted_ms.end());
  load.elapsed_s =
      std::chrono::duration<double>(bench_end - bench_start).count();
  load.errors = errors.load();
  return load;
}

// Folds a finished load into the per-scenario report row.
ScenarioResult FillResult(const Scenario& scenario, LoadResult load) {
  ScenarioResult result;
  result.scenario = scenario;
  result.completed = load.sorted_ms.size();
  result.elapsed_s = load.elapsed_s;
  if (result.elapsed_s > 0) {
    result.req_per_s =
        static_cast<double>(result.completed) / result.elapsed_s;
    result.ns_per_op = result.completed == 0
                           ? 0
                           : result.elapsed_s * 1e9 /
                                 static_cast<double>(result.completed);
  }
  result.p50_ms = PercentileMs(load.sorted_ms, 0.50);
  result.p95_ms = PercentileMs(load.sorted_ms, 0.95);
  result.p99_ms = PercentileMs(load.sorted_ms, 0.99);
  if (load.errors != 0) {
    std::fprintf(stderr, "bench_throughput: %llu request errors in %s\n",
                 static_cast<unsigned long long>(load.errors),
                 scenario.name.c_str());
  }
  return result;
}

ScenarioResult RunScenario(const zltp::PirStore& store,
                           const ThroughputParams& base_params,
                           const Scenario& scenario) {
  ThroughputParams params = base_params;
  if (scenario.clients_override > 0) params.clients = scenario.clients_override;
  if (scenario.requests_override > 0) {
    params.requests_per_client = scenario.requests_override;
  }

  zltp::ServerOptions options;
  options.batch_config.max_batch = 16;
  options.batch_config.max_wait = scenario.max_wait;
  options.batch_config.pipelined = scenario.pipelined;
  options.num_threads = params.threads;
  // Declared before the servers: batch completion callbacks hold a reactor
  // reference, and the server destructor joins those callbacks' threads.
  net::Reactor reactor;
  zltp::ZltpPirServer server0(store, 0, options);
  zltp::ZltpPirServer server1(store, 1, options);

  std::uint16_t port0 = 0;
  std::uint16_t port1 = 0;
  std::optional<net::TcpListener> tlistener0;
  std::optional<net::TcpListener> tlistener1;
  std::thread accept0;
  std::thread accept1;
  if (scenario.reactor) {
    auto listener0 = net::TcpListener::Listen(0);
    auto listener1 = net::TcpListener::Listen(0);
    LW_CHECK(listener0.ok() && listener1.ok());
    port0 = listener0->bound_port();
    port1 = listener1->bound_port();
    LW_CHECK(server0.ServeOnReactor(reactor, std::move(*listener0)).ok());
    LW_CHECK(server1.ServeOnReactor(reactor, std::move(*listener1)).ok());
    LW_CHECK(reactor.Start().ok());
  } else {
    auto listener0 = net::TcpListener::Listen(0);
    auto listener1 = net::TcpListener::Listen(0);
    LW_CHECK(listener0.ok() && listener1.ok());
    port0 = listener0->bound_port();
    port1 = listener1->bound_port();
    tlistener0.emplace(std::move(*listener0));
    tlistener1.emplace(std::move(*listener1));
    accept0 = AcceptLoop(*tlistener0, server0);
    accept1 = AcceptLoop(*tlistener1, server1);
  }

  // Warmup batches must not count against this scenario's stats, so the
  // snapshot happens at the start barrier.
  zltp::BatchScheduler::Stats stats_before{};
  const LoadResult load = DriveClosedLoopClients(
      port0, port1, store.domain_bits(), params,
      [&] { stats_before = server0.batch_stats(); });
  const auto stats_after = server0.batch_stats();

  if (scenario.reactor) {
    reactor.Stop();
  } else {
    tlistener0->Close();
    tlistener1->Close();
    accept0.join();
    accept1.join();
  }

  ScenarioResult result = FillResult(scenario, load);
  result.batches = stats_after.batches - stats_before.batches;
  const std::uint64_t riders =
      (stats_after.requests - stats_after.expired) -
      (stats_before.requests - stats_before.expired);
  result.avg_batch = result.batches == 0
                         ? 0
                         : static_cast<double>(riders) /
                               static_cast<double>(result.batches);
  return result;
}

// The sharded-deployment scenario (paper §5.2): each logical server is a
// FrontEndServer over 2^top_bits shard data servers. Closed-loop clients
// measure whether concurrent private GETs pipeline across the shard links:
// the old lock-step fan-out held a fan-out-wide mutex across all four
// shard round trips, so multi-client req/s could not beat a single
// client's 1/latency. CI asserts the multi-client row now clears the
// single-client row by a real margin.
//
// Harness shape: clients arrive over real TCP; each shard sits behind a
// DelayRelay emulating a fixed shard round-trip time, the deployment
// reality the fan-out exists for (remote shards, paper §5.2). The RTT
// dominates every CPU cost in the path, so the A/B measures latency
// HIDING, not thread parallelism: a single closed-loop client can never
// beat 1/RTT req/s, and the multi-client row beats it if and only if
// many GETs' shard waits overlap. That makes the ratio robust on any
// machine — including single-core CI runners, where a compute-bound
// version of this scenario would show no scaling for either fan-out.
// (The reactor-link backend shares the same correlation engine; reply
// equivalence between the two link backends is asserted by
// tests/fanout_test.cc.)
// Emulates the network between a front-end and one remote shard: frames
// pass through unmodified, but every shard->front-end reply is delivered a
// fixed `delay` after the shard produced it, and concurrent replies age in
// parallel (a timer queue). net::DelayTransport cannot play this role — its
// sleep runs inside Receive, so pipelined frames on one link would each pay
// the delay back-to-back, which models a slow shard, not a distant one.
class DelayRelay {
 public:
  // `front` faces the fan-out's link, `back` faces the shard's serving.
  DelayRelay(std::unique_ptr<net::Transport> front,
             std::unique_ptr<net::Transport> back,
             std::chrono::milliseconds delay)
      : front_(std::move(front)), back_(std::move(back)), delay_(delay) {
    forward_ = std::thread([this] {
      for (;;) {
        // Infinite on purpose: the relay lives exactly as long as the
        // scenario and is torn down by closing both transports.
        auto frame = front_->Receive(net::Deadline::Infinite());
        if (!frame.ok() || !back_->Send(*frame).ok()) break;
      }
      back_->Close();
    });
    collect_ = std::thread([this] {
      for (;;) {
        auto frame = back_->Receive(net::Deadline::Infinite());
        if (!frame.ok()) break;
        std::lock_guard<std::mutex> lock(mu_);
        due_.push_back(
            {std::chrono::steady_clock::now() + delay_, std::move(*frame)});
        cv_.notify_all();
      }
    });
    deliver_ = std::thread([this] { DeliverLoop(); });
  }

  ~DelayRelay() {
    front_->Close();
    back_->Close();
    forward_.join();
    collect_.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    deliver_.join();
  }

 private:
  struct Timed {
    std::chrono::steady_clock::time_point at;
    net::Frame frame;
  };

  void DeliverLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (stopping_) return;
      if (due_.empty()) {
        cv_.wait(lock);
        continue;
      }
      const auto at = due_.front().at;  // FIFO: equal delays, ordered dues
      if (std::chrono::steady_clock::now() < at) {
        cv_.wait_until(lock, at);
        continue;
      }
      const net::Frame frame = std::move(due_.front().frame);
      due_.pop_front();
      lock.unlock();
      (void)front_->Send(frame);
      lock.lock();
    }
  }

  std::unique_ptr<net::Transport> front_;
  std::unique_ptr<net::Transport> back_;
  const std::chrono::milliseconds delay_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Timed> due_;
  bool stopping_ = false;
  std::thread forward_;
  std::thread collect_;
  std::thread deliver_;
};

ScenarioResult RunFrontendScenario(const ThroughputParams& base_params,
                                   const Scenario& scenario) {
  ThroughputParams params = base_params;
  if (scenario.clients_override > 0) params.clients = scenario.clients_override;
  if (scenario.requests_override > 0) {
    params.requests_per_client = scenario.requests_override;
  }

  // A small fixed domain keeps per-shard compute (DPF expand + XOR scan,
  // serial per shard and paid once per GET at EVERY shard) well under the
  // per-GET round-trip overhead. Otherwise shard compute is the system's
  // serial resource and caps req/s identically for one client and many —
  // the scan-throughput scenarios above measure that; this one isolates
  // fan-out concurrency.
  zltp::ShardTopology topology;
  topology.domain_bits = 10;
  topology.top_bits = 2;  // 4 shard data servers per logical server
  topology.record_size = params.record_size;

  std::vector<std::unique_ptr<zltp::ShardDataServer>> shards[2];
  for (int replica = 0; replica < 2; ++replica) {
    for (std::size_t s = 0; s < topology.shard_count(); ++s) {
      shards[replica].push_back(
          std::make_unique<zltp::ShardDataServer>(topology, s));
    }
  }
  // Identical content in both replicas: the two logical servers of a PIR
  // pair must hold the same database. Collisions just skip (content is
  // irrelevant to cost; the scan covers the whole domain either way).
  {
    Rng rng(31);
    Bytes record(topology.record_size);
    const std::uint64_t domain = std::uint64_t{1} << topology.domain_bits;
    for (std::size_t i = 0; i < params.published; ++i) {
      const std::uint64_t index = rng.UniformInt(domain);
      const std::size_t shard =
          static_cast<std::size_t>(index & (topology.shard_count() - 1));
      rng.Fill(record);
      (void)shards[0][shard]->Load(index, record);
      (void)shards[1][shard]->Load(index, record);
    }
  }
  // Every shard link crosses an emulated 5ms one-way reply latency. The
  // old lock-step fan-out paid it shard_count times sequentially per GET
  // and admitted one GET at a time; the mux pays it once per GET and
  // overlaps GETs, which is the whole A/B.
  const std::chrono::milliseconds shard_delay{5};
  std::vector<std::unique_ptr<DelayRelay>> relays;
  auto make_fanout = [&](int replica) {
    std::vector<std::unique_ptr<net::Transport>> links;
    for (auto& shard : shards[replica]) {
      net::TransportPair front_pair = net::CreateInMemoryPair();
      net::TransportPair back_pair = net::CreateInMemoryPair();
      shard->ServeConnectionDetached(std::move(back_pair.b));
      relays.push_back(std::make_unique<DelayRelay>(
          std::move(front_pair.b), std::move(back_pair.a), shard_delay));
      links.push_back(std::move(front_pair.a));
    }
    return zltp::ShardFanout(topology, std::move(links));
  };
  const Bytes keyword_seed(16, 0x7e);
  zltp::FrontEndServer frontend0(0, keyword_seed, make_fanout(0));
  zltp::FrontEndServer frontend1(1, keyword_seed, make_fanout(1));
  // Clients are served by per-connection threads whose GETs meet in the
  // fan-out's blocking Answer — N concurrent Answers must pipeline through
  // the mux, which is exactly what the single-vs-many A/B detects.
  auto client_listener0 = net::TcpListener::Listen(0);
  auto client_listener1 = net::TcpListener::Listen(0);
  LW_CHECK(client_listener0.ok() && client_listener1.ok());
  const std::uint16_t port0 = client_listener0->bound_port();
  const std::uint16_t port1 = client_listener1->bound_port();
  std::optional<net::TcpListener> serve0(std::move(*client_listener0));
  std::optional<net::TcpListener> serve1(std::move(*client_listener1));
  std::thread accept0 = AcceptLoop(*serve0, frontend0);
  std::thread accept1 = AcceptLoop(*serve1, frontend1);

  const LoadResult load = DriveClosedLoopClients(
      port0, port1, topology.domain_bits, params, nullptr);

  serve0->Close();
  serve1->Close();
  accept0.join();
  accept1.join();
  return FillResult(scenario, load);
}

bool WriteJson(const std::string& path, const ThroughputParams& params,
               bool smoke, const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_throughput: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(
      f,
      "{\n  \"config\": {\"domain_bits\": %d, \"record_size\": %zu, "
      "\"clients\": %d, \"requests_per_client\": %d, \"threads\": %d, "
      "\"smoke\": %s, \"xor_tier\": \"%s\", "
      "\"hugepage_advised_bytes\": %llu},\n",
      params.domain_bits, params.record_size, params.clients,
      params.requests_per_client, params.threads, smoke ? "true" : "false",
      pir::XorTierName(pir::ActiveXorTier()),
      static_cast<unsigned long long>(HugepageAdvisedBytes()));
  std::fprintf(f, "  \"throughput\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const int conns =
        2 * (r.scenario.clients_override > 0 ? r.scenario.clients_override
                                             : params.clients);
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"serve\": \"%s\", \"conns\": %d, "
        "\"pipelined\": %s, \"max_wait_ms\": %lld, "
        "\"requests\": %llu, \"req_per_s\": %.3f, \"ns_per_op\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"avg_batch\": %.2f, \"batches\": %llu}%s\n",
        r.scenario.name.c_str(), ServeName(r.scenario),
        conns, r.scenario.pipelined ? "true" : "false",
        static_cast<long long>(r.scenario.max_wait.count()),
        static_cast<unsigned long long>(r.completed), r.req_per_s,
        r.ns_per_op, r.p50_ms, r.p95_ms, r.p99_ms, r.avg_batch,
        static_cast<unsigned long long>(r.batches),
        i + 1 < results.size() ? "," : "");
  }
  const std::string metrics =
      obs::ToJson(obs::Registry::Default().Snapshot());
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(&argc, argv);
  ThroughputParams params;
  params.threads = flags.threads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      params.clients = std::atoi(arg.c_str() + std::strlen("--clients="));
    } else if (arg.rfind("--requests=", 0) == 0) {
      params.requests_per_client =
          std::atoi(arg.c_str() + std::strlen("--requests="));
    } else if (arg.rfind("--conns=", 0) == 0) {
      params.high_conns = std::atoi(arg.c_str() + std::strlen("--conns="));
      LW_CHECK(params.high_conns >= 2);
    }
  }
  // The high-connection scenario needs client+server fds in one process;
  // default soft limits (often 1024) are too small, so take the hard limit.
  {
    struct rlimit lim{};
    if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
      lim.rlim_cur = lim.rlim_max;
      (void)setrlimit(RLIMIT_NOFILE, &lim);
    }
  }
  if (flags.smoke) {
    params.domain_bits = 12;
    params.record_size = 256;
    params.published = 200;
    params.clients = 3;
    params.requests_per_client = 15;
    params.warmup_per_client = 2;
  }
  LW_CHECK(params.clients >= 1 && params.requests_per_client >= 1);

  zltp::PirStoreConfig store_config;
  store_config.domain_bits = params.domain_bits;
  store_config.record_size = params.record_size;
  store_config.keyword_seed = Bytes(16, 0x7e);
  zltp::PirStore store(store_config);
  {
    Rng rng(21);
    Bytes value(params.record_size / 2);
    for (std::size_t i = 0; i < params.published; ++i) {
      rng.Fill(value);
      (void)store.Publish("page/" + std::to_string(i), value);
    }
  }

  // ≥2 batch-deadline settings, each in both scheduling modes: the deadline
  // sweep shows the latency/throughput trade the co-rider window buys, the
  // mode sweep shows what expand/scan overlap is worth at fixed deadline.
  // Then the serving-model A/B at fixed batch settings, and the
  // high-connection scenario only the reactor can realistically run.
  std::vector<Scenario> scenarios = {
      {"pipelined/wait1ms", true, std::chrono::milliseconds(1)},
      {"serial/wait1ms", false, std::chrono::milliseconds(1)},
      {"pipelined/wait4ms", true, std::chrono::milliseconds(4)},
      {"serial/wait4ms", false, std::chrono::milliseconds(4)},
      {"reactor/wait1ms", true, std::chrono::milliseconds(1), true},
      {"reactor/wait4ms", true, std::chrono::milliseconds(4), true},
  };
  {
    // Each client holds one connection per logical server. Per-client
    // request count shrinks so the scenario measures concurrency, not ten
    // minutes of wall clock.
    Scenario high;
    high.name = "reactor/conns" + std::to_string(params.high_conns);
    high.pipelined = true;
    high.max_wait = std::chrono::milliseconds(4);
    high.reactor = true;
    high.clients_override = std::max(1, params.high_conns / 2);
    high.requests_override = flags.smoke ? 2 : 4;
    scenarios.push_back(high);
  }
  {
    // The sharded front-end A/B: the same §5.2 deployment under one client
    // and under many. Request counts are sized so each row's measuring
    // window is long enough to report a stable req/s; the single-client
    // row issues more requests since it is the only traffic source.
    Scenario single;
    single.name = "frontend/conns2";
    single.frontend = true;
    single.clients_override = 1;
    single.requests_override = flags.smoke ? 250 : 500;
    scenarios.push_back(single);
    Scenario many;
    many.name = "frontend/conns16";
    many.frontend = true;
    many.clients_override = 8;
    many.requests_override = flags.smoke ? 125 : 250;
    scenarios.push_back(many);
  }
  std::vector<ScenarioResult> results;
  for (const Scenario& s : scenarios) {
    results.push_back(s.frontend ? RunFrontendScenario(params, s)
                                 : RunScenario(store, params, s));
  }

  std::printf(
      "\n=== E11 (repo ablation): saturating throughput, 2^%d domain x "
      "%zu B, %d closed-loop clients, %d server thread(s), %s kernel ===\n",
      params.domain_bits, params.record_size, params.clients,
      params.threads == 0 ? static_cast<int>(
                                std::thread::hardware_concurrency())
                          : params.threads,
      pir::XorTierName(pir::ActiveXorTier()));
  PrintRule();
  std::printf("%-22s %6s %9s %9s %9s %9s %10s\n", "scenario", "conns",
              "req/s", "p50 ms", "p95 ms", "p99 ms", "avg batch");
  PrintRule();
  for (const ScenarioResult& r : results) {
    const int conns =
        2 * (r.scenario.clients_override > 0 ? r.scenario.clients_override
                                             : params.clients);
    std::printf("%-22s %6d %9.1f %9.2f %9.2f %9.2f %10.2f\n",
                r.scenario.name.c_str(), conns, r.req_per_s, r.p50_ms,
                r.p95_ms, r.p99_ms, r.avg_batch);
  }
  PrintRule();

  const std::string json_path =
      flags.json_path.empty() ? "BENCH_throughput.json" : flags.json_path;
  if (!WriteJson(json_path, params, flags.smoke, results)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) { return lw::bench::Main(argc, argv); }
