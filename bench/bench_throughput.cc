// E11 (repo ablation) — saturating server throughput.
//
// The other benches time isolated server components; this one measures the
// quantity the batch engine actually optimizes: sustained requests/second
// of a REAL server under closed-loop load, and the latency the batching
// deadline buys it. Per scenario it stands up both logical PIR servers on
// ephemeral TCP ports, connects closed-loop clients (each issues its next
// private GET the moment the previous one completes — the standard
// saturation harness shape), and sweeps the batch close deadline
// (--max-wait) crossed with pipelined vs serial scheduling, reporting
//
//   req/s sustained, p50/p95/p99 request latency, mean batch occupancy
//
// per scenario into BENCH_throughput.json so CI can track the trajectory
// (tools/bench/compare_bench.py fails on >15% req/s regressions).
//
// Scenarios cover both serving models (docs/ARCHITECTURE.md): the blocking
// thread-per-connection path and the epoll reactor, including a
// high-connection reactor scenario (default 1024 concurrent connections,
// --conns=N) that a thread-per-connection server could only match with a
// thousand kernel threads.
//
// Flags: --smoke (CI-sized run), --threads=N (server scan/expand pool),
// --json=PATH (default BENCH_throughput.json), --clients=N, --requests=N
// (per client), --conns=N (high-connection scenario size).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "bench_util.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "pir/xor_kernel.h"
#include "util/alloc.h"
#include "util/check.h"
#include "zltp/client.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw::bench {
namespace {

struct ThroughputParams {
  int domain_bits = 16;
  std::size_t record_size = 1024;
  std::size_t published = 2000;
  int clients = 8;
  int requests_per_client = 40;  // per scenario, after warmup
  int warmup_per_client = 4;
  int threads = 1;
  // Total concurrent TCP connections for the high-connection reactor
  // scenario (each closed-loop client holds one connection per logical
  // server, so clients = conns / 2).
  int high_conns = 1024;
};

struct Scenario {
  std::string name;
  bool pipelined = true;
  std::chrono::milliseconds max_wait{2};
  // true: one epoll reactor serves both logical servers. false: blocking
  // thread-per-connection (the A/B baseline).
  bool reactor = false;
  // Per-scenario overrides (0 = take the ThroughputParams value). The
  // high-connection scenario trades requests-per-client for client count
  // so total work stays bounded while concurrency scales.
  int clients_override = 0;
  int requests_override = 0;
};

struct ScenarioResult {
  Scenario scenario;
  std::uint64_t completed = 0;
  double elapsed_s = 0;
  double req_per_s = 0;
  double ns_per_op = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double avg_batch = 0;
  std::uint64_t batches = 0;
};

double PercentileMs(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

// Accepts connections until the listener closes, handing each to the
// server's detached per-connection serving.
std::thread AcceptLoop(net::TcpListener& listener,
                       zltp::ZltpPirServer& server) {
  return std::thread([&listener, &server] {
    for (;;) {
      auto transport = listener.Accept();
      if (!transport.ok()) return;  // listener closed: scenario over
      server.ServeConnectionDetached(std::move(*transport));
    }
  });
}

ScenarioResult RunScenario(const zltp::PirStore& store,
                           const ThroughputParams& base_params,
                           const Scenario& scenario) {
  ThroughputParams params = base_params;
  if (scenario.clients_override > 0) params.clients = scenario.clients_override;
  if (scenario.requests_override > 0) {
    params.requests_per_client = scenario.requests_override;
  }

  zltp::ServerOptions options;
  options.batch_config.max_batch = 16;
  options.batch_config.max_wait = scenario.max_wait;
  options.batch_config.pipelined = scenario.pipelined;
  options.num_threads = params.threads;
  // Declared before the servers: batch completion callbacks hold a reactor
  // reference, and the server destructor joins those callbacks' threads.
  net::Reactor reactor;
  zltp::ZltpPirServer server0(store, 0, options);
  zltp::ZltpPirServer server1(store, 1, options);

  std::uint16_t port0 = 0;
  std::uint16_t port1 = 0;
  std::optional<net::TcpListener> tlistener0;
  std::optional<net::TcpListener> tlistener1;
  std::thread accept0;
  std::thread accept1;
  if (scenario.reactor) {
    auto listener0 = net::TcpListener::Listen(0);
    auto listener1 = net::TcpListener::Listen(0);
    LW_CHECK(listener0.ok() && listener1.ok());
    port0 = listener0->bound_port();
    port1 = listener1->bound_port();
    LW_CHECK(server0.ServeOnReactor(reactor, std::move(*listener0)).ok());
    LW_CHECK(server1.ServeOnReactor(reactor, std::move(*listener1)).ok());
    LW_CHECK(reactor.Start().ok());
  } else {
    auto listener0 = net::TcpListener::Listen(0);
    auto listener1 = net::TcpListener::Listen(0);
    LW_CHECK(listener0.ok() && listener1.ok());
    port0 = listener0->bound_port();
    port1 = listener1->bound_port();
    tlistener0.emplace(std::move(*listener0));
    tlistener1.emplace(std::move(*listener1));
    accept0 = AcceptLoop(*tlistener0, server0);
    accept1 = AcceptLoop(*tlistener1, server1);
  }

  // Closed-loop clients: connect + warm up first, then all start measuring
  // together so the server sees full concurrency for the whole window.
  std::atomic<bool> start{false};
  std::atomic<int> ready{0};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<double>> latencies_ms(
      static_cast<std::size_t>(params.clients));
  std::vector<std::thread> clients;
  for (int c = 0; c < params.clients; ++c) {
    clients.emplace_back([&, c] {
      auto t0 = net::TcpConnect("127.0.0.1", port0);
      auto t1 = net::TcpConnect("127.0.0.1", port1);
      if (!t0.ok() || !t1.ok()) {
        ++errors;
        ++ready;
        return;
      }
      auto session = zltp::PirSession::Establish(
          zltp::EstablishOptions::FromTransports(std::move(*t0),
                                                 std::move(*t1)));
      if (!session.ok()) {
        ++errors;
        ++ready;
        return;
      }
      Rng rng(static_cast<std::uint64_t>(c) + 1000);
      const std::uint64_t domain = std::uint64_t{1} << store.domain_bits();
      for (int i = 0; i < params.warmup_per_client; ++i) {
        if (!session->PrivateGetIndex(rng.UniformInt(domain)).ok()) ++errors;
      }
      ++ready;
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& mine = latencies_ms[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(params.requests_per_client));
      for (int i = 0; i < params.requests_per_client; ++i) {
        const auto before = std::chrono::steady_clock::now();
        if (!session->PrivateGetIndex(rng.UniformInt(domain)).ok()) {
          ++errors;
          continue;
        }
        const auto after = std::chrono::steady_clock::now();
        mine.push_back(
            std::chrono::duration<double, std::milli>(after - before)
                .count());
      }
      session->Close();
    });
  }
  while (ready.load() < params.clients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Warmup batches must not count against this scenario's stats.
  const auto stats_before = server0.batch_stats();
  const auto bench_start = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const auto bench_end = std::chrono::steady_clock::now();
  const auto stats_after = server0.batch_stats();

  if (scenario.reactor) {
    reactor.Stop();
  } else {
    tlistener0->Close();
    tlistener1->Close();
    accept0.join();
    accept1.join();
  }

  ScenarioResult result;
  result.scenario = scenario;
  std::vector<double> all_ms;
  for (auto& per_client : latencies_ms) {
    all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  result.completed = all_ms.size();
  result.elapsed_s =
      std::chrono::duration<double>(bench_end - bench_start).count();
  if (result.elapsed_s > 0) {
    result.req_per_s =
        static_cast<double>(result.completed) / result.elapsed_s;
    result.ns_per_op = result.completed == 0
                           ? 0
                           : result.elapsed_s * 1e9 /
                                 static_cast<double>(result.completed);
  }
  result.p50_ms = PercentileMs(all_ms, 0.50);
  result.p95_ms = PercentileMs(all_ms, 0.95);
  result.p99_ms = PercentileMs(all_ms, 0.99);
  result.batches = stats_after.batches - stats_before.batches;
  const std::uint64_t riders =
      (stats_after.requests - stats_after.expired) -
      (stats_before.requests - stats_before.expired);
  result.avg_batch = result.batches == 0
                         ? 0
                         : static_cast<double>(riders) /
                               static_cast<double>(result.batches);
  if (errors.load() != 0) {
    std::fprintf(stderr, "bench_throughput: %llu request errors in %s\n",
                 static_cast<unsigned long long>(errors.load()),
                 scenario.name.c_str());
  }
  return result;
}

bool WriteJson(const std::string& path, const ThroughputParams& params,
               bool smoke, const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_throughput: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(
      f,
      "{\n  \"config\": {\"domain_bits\": %d, \"record_size\": %zu, "
      "\"clients\": %d, \"requests_per_client\": %d, \"threads\": %d, "
      "\"smoke\": %s, \"xor_tier\": \"%s\", "
      "\"hugepage_advised_bytes\": %llu},\n",
      params.domain_bits, params.record_size, params.clients,
      params.requests_per_client, params.threads, smoke ? "true" : "false",
      pir::XorTierName(pir::ActiveXorTier()),
      static_cast<unsigned long long>(HugepageAdvisedBytes()));
  std::fprintf(f, "  \"throughput\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const int conns =
        2 * (r.scenario.clients_override > 0 ? r.scenario.clients_override
                                             : params.clients);
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"serve\": \"%s\", \"conns\": %d, "
        "\"pipelined\": %s, \"max_wait_ms\": %lld, "
        "\"requests\": %llu, \"req_per_s\": %.3f, \"ns_per_op\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"avg_batch\": %.2f, \"batches\": %llu}%s\n",
        r.scenario.name.c_str(), r.scenario.reactor ? "reactor" : "threaded",
        conns, r.scenario.pipelined ? "true" : "false",
        static_cast<long long>(r.scenario.max_wait.count()),
        static_cast<unsigned long long>(r.completed), r.req_per_s,
        r.ns_per_op, r.p50_ms, r.p95_ms, r.p99_ms, r.avg_batch,
        static_cast<unsigned long long>(r.batches),
        i + 1 < results.size() ? "," : "");
  }
  const std::string metrics =
      obs::ToJson(obs::Registry::Default().Snapshot());
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(&argc, argv);
  ThroughputParams params;
  params.threads = flags.threads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      params.clients = std::atoi(arg.c_str() + std::strlen("--clients="));
    } else if (arg.rfind("--requests=", 0) == 0) {
      params.requests_per_client =
          std::atoi(arg.c_str() + std::strlen("--requests="));
    } else if (arg.rfind("--conns=", 0) == 0) {
      params.high_conns = std::atoi(arg.c_str() + std::strlen("--conns="));
      LW_CHECK(params.high_conns >= 2);
    }
  }
  // The high-connection scenario needs client+server fds in one process;
  // default soft limits (often 1024) are too small, so take the hard limit.
  {
    struct rlimit lim{};
    if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
      lim.rlim_cur = lim.rlim_max;
      (void)setrlimit(RLIMIT_NOFILE, &lim);
    }
  }
  if (flags.smoke) {
    params.domain_bits = 12;
    params.record_size = 256;
    params.published = 200;
    params.clients = 3;
    params.requests_per_client = 15;
    params.warmup_per_client = 2;
  }
  LW_CHECK(params.clients >= 1 && params.requests_per_client >= 1);

  zltp::PirStoreConfig store_config;
  store_config.domain_bits = params.domain_bits;
  store_config.record_size = params.record_size;
  store_config.keyword_seed = Bytes(16, 0x7e);
  zltp::PirStore store(store_config);
  {
    Rng rng(21);
    Bytes value(params.record_size / 2);
    for (std::size_t i = 0; i < params.published; ++i) {
      rng.Fill(value);
      (void)store.Publish("page/" + std::to_string(i), value);
    }
  }

  // ≥2 batch-deadline settings, each in both scheduling modes: the deadline
  // sweep shows the latency/throughput trade the co-rider window buys, the
  // mode sweep shows what expand/scan overlap is worth at fixed deadline.
  // Then the serving-model A/B at fixed batch settings, and the
  // high-connection scenario only the reactor can realistically run.
  std::vector<Scenario> scenarios = {
      {"pipelined/wait1ms", true, std::chrono::milliseconds(1)},
      {"serial/wait1ms", false, std::chrono::milliseconds(1)},
      {"pipelined/wait4ms", true, std::chrono::milliseconds(4)},
      {"serial/wait4ms", false, std::chrono::milliseconds(4)},
      {"reactor/wait1ms", true, std::chrono::milliseconds(1), true},
      {"reactor/wait4ms", true, std::chrono::milliseconds(4), true},
  };
  {
    // Each client holds one connection per logical server. Per-client
    // request count shrinks so the scenario measures concurrency, not ten
    // minutes of wall clock.
    Scenario high;
    high.name = "reactor/conns" + std::to_string(params.high_conns);
    high.pipelined = true;
    high.max_wait = std::chrono::milliseconds(4);
    high.reactor = true;
    high.clients_override = std::max(1, params.high_conns / 2);
    high.requests_override = flags.smoke ? 2 : 4;
    scenarios.push_back(high);
  }
  std::vector<ScenarioResult> results;
  for (const Scenario& s : scenarios) {
    results.push_back(RunScenario(store, params, s));
  }

  std::printf(
      "\n=== E11 (repo ablation): saturating throughput, 2^%d domain x "
      "%zu B, %d closed-loop clients, %d server thread(s), %s kernel ===\n",
      params.domain_bits, params.record_size, params.clients,
      params.threads == 0 ? static_cast<int>(
                                std::thread::hardware_concurrency())
                          : params.threads,
      pir::XorTierName(pir::ActiveXorTier()));
  PrintRule();
  std::printf("%-22s %6s %9s %9s %9s %9s %10s\n", "scenario", "conns",
              "req/s", "p50 ms", "p95 ms", "p99 ms", "avg batch");
  PrintRule();
  for (const ScenarioResult& r : results) {
    const int conns =
        2 * (r.scenario.clients_override > 0 ? r.scenario.clients_override
                                             : params.clients);
    std::printf("%-22s %6d %9.1f %9.2f %9.2f %9.2f %10.2f\n",
                r.scenario.name.c_str(), conns, r.req_per_s, r.p50_ms,
                r.p95_ms, r.p99_ms, r.avg_batch);
  }
  PrintRule();

  const std::string json_path =
      flags.json_path.empty() ? "BENCH_throughput.json" : flags.json_path;
  if (!WriteJson(json_path, params, flags.smoke, results)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) { return lw::bench::Main(argc, argv); }
