// E10 (repo ablation) — page-load pipelining.
//
// A lightweb page view issues fetches_per_page private GETs. Issuing them
// sequentially pays one full round trip + scan per query; the pipelined
// batch (PirSession::PrivateGetBatch, used by the browser through
// BlobChannel::FetchPage) ships all queries before reading responses, and
// the server's per-connection concurrency lets them co-ride one batched
// scan (§5.1). This bench quantifies that design choice end-to-end through
// real ZLTP sessions over in-memory transports.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/transport.h"
#include "util/check.h"
#include "util/timer.h"
#include "zltp/client.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw::bench {
namespace {

constexpr int kFetchesPerPage = 5;

struct Deployment {
  zltp::PirStore store;
  zltp::ZltpPirServer server0;
  zltp::ZltpPirServer server1;
  std::vector<std::string> titles;

  explicit Deployment(std::size_t pages)
      : store([] {
          zltp::PirStoreConfig c;
          c.domain_bits = 18;
          c.record_size = 1024;
          c.keyword_seed = Bytes(16, 0x18);
          return c;
        }()),
        server0(store, 0),
        server1(store, 1) {
    for (std::size_t i = 0; i < pages; ++i) {
      const std::string title = "site/page" + std::to_string(i);
      if (store.Publish(title, ToBytes("{\"n\":" + std::to_string(i) + "}"))
              .ok()) {
        titles.push_back(title);
      }
    }
  }

  zltp::PirSession Connect() {
    net::TransportPair p0 = net::CreateInMemoryPair();
    net::TransportPair p1 = net::CreateInMemoryPair();
    server0.ServeConnectionDetached(std::move(p0.b));
    server1.ServeConnectionDetached(std::move(p1.b));
    auto session = zltp::PirSession::Establish(
        zltp::EstablishOptions::FromTransports(std::move(p0.a),
                                               std::move(p1.a)));
    LW_CHECK(session.ok());
    return std::move(*session);
  }
};

Deployment& SharedDeployment() {
  // Leaky singleton: the deployment owns detached server threads, and
  // tearing it down during static destruction races them at exit.
  // lwlint: allow(naked-new)
  static Deployment* d = new Deployment(2000);
  return *d;
}

void BM_PageLoadSequential(benchmark::State& state) {
  zltp::PirSession session = SharedDeployment().Connect();
  const auto& titles = SharedDeployment().titles;
  std::size_t i = 0;
  for (auto _ : state) {
    for (int f = 0; f < kFetchesPerPage; ++f) {
      benchmark::DoNotOptimize(
          session.PrivateGet(titles[(i + f) % titles.size()]));
    }
    i += kFetchesPerPage;
  }
  session.Close();
}
BENCHMARK(BM_PageLoadSequential)->Unit(benchmark::kMillisecond);

void BM_PageLoadPipelined(benchmark::State& state) {
  zltp::PirSession session = SharedDeployment().Connect();
  const auto& titles = SharedDeployment().titles;
  std::size_t i = 0;
  for (auto _ : state) {
    std::vector<std::string> page_titles;
    for (int f = 0; f < kFetchesPerPage; ++f) {
      page_titles.push_back(titles[(i + f) % titles.size()]);
    }
    benchmark::DoNotOptimize(session.PrivateGetBatch(page_titles));
    i += kFetchesPerPage;
  }
  session.Close();
}
BENCHMARK(BM_PageLoadPipelined)->Unit(benchmark::kMillisecond);

void PrintReproductionTable() {
  std::printf("\n=== E10 (repo ablation): sequential vs pipelined page "
              "loads ===\n");
  Deployment& deployment = SharedDeployment();
  zltp::PirSession session = deployment.Connect();
  const auto& titles = deployment.titles;

  constexpr int kPages = 20;
  Stopwatch seq_timer;
  for (int p = 0; p < kPages; ++p) {
    for (int f = 0; f < kFetchesPerPage; ++f) {
      (void)session.PrivateGet(titles[(p * kFetchesPerPage + f) % titles.size()]);
    }
  }
  const double seq_ms = seq_timer.ElapsedMillis() / kPages;

  Stopwatch pipe_timer;
  for (int p = 0; p < kPages; ++p) {
    std::vector<std::string> page_titles;
    for (int f = 0; f < kFetchesPerPage; ++f) {
      page_titles.push_back(titles[(p * kFetchesPerPage + f) % titles.size()]);
    }
    (void)session.PrivateGetBatch(page_titles);
  }
  const double pipe_ms = pipe_timer.ElapsedMillis() / kPages;
  session.Close();

  PrintRule();
  std::printf("%-42s %14s\n", "strategy (5 GETs/page, 2^18 domain)",
              "ms/page-load");
  PrintRule();
  std::printf("%-42s %14.1f\n", "sequential PrivateGet x5", seq_ms);
  std::printf("%-42s %14.1f\n", "pipelined PrivateGetBatch", pipe_ms);
  PrintRule();
  std::printf("speedup: %.2fx — the browser's FetchPage path uses the "
              "pipelined strategy.\n"
              "(On a real network the gap widens by 4 round-trip times "
              "per page.)\n\n",
              seq_ms / pipe_ms);
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
