// Shared helpers for the experiment benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dpf/dpf.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "pir/blob_db.h"
#include "pir/two_server.h"
#include "util/rand.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lw::bench {

// Flags shared by every bench binary, parsed (and stripped) before the
// remaining argv goes to benchmark::Initialize:
//   --threads=N   worker threads for the parallel paths (1 = serial)
//   --smoke       shrink datasets/iterations for a CI smoke run
//   --json=PATH   write measured results as JSON for archiving
struct BenchFlags {
  int threads = 1;
  bool smoke = false;
  std::string json_path;
};

inline BenchFlags ParseBenchFlags(int* argc, char** argv) {
  BenchFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      flags.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
      if (flags.threads < 0) flags.threads = 0;
    } else if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(std::strlen("--json="));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return flags;
}

// Makes a pool matching --threads, or null for a strictly serial run. The
// pool is what the server would own; benches pass it down the same APIs.
inline std::unique_ptr<ThreadPool> MakeBenchPool(const BenchFlags& flags) {
  if (flags.threads == 1) return nullptr;
  return std::make_unique<ThreadPool>(flags.threads);
}

// Accumulates measurement rows and writes them as a JSON document:
//   {"benchmarks":[{"name":...,"iters":...,"ns_per_op":...,"bytes_per_s":...}],
//    "metrics":{...}}
// The "metrics" object is the process's observability snapshot
// (obs::Registry::Default()) taken at write time, so archived bench
// artifacts carry the same counters an operator would scrape from a server
// (rows scanned, chunks stolen, expand/scan histograms — see
// docs/OBSERVABILITY.md). Rows are hand-rolled on purpose: the CI archive
// format must not pull in a JSON dependency. Names are ASCII identifiers
// chosen by the benches themselves, so escaping is limited to
// quote/backslash.
class JsonRecorder {
 public:
  void Add(const std::string& name, std::int64_t iters, double ns_per_op,
           double bytes_per_s) {
    entries_.push_back(Entry{name, iters, ns_per_op, bytes_per_s});
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"iters\": %lld, "
                   "\"ns_per_op\": %.3f, \"bytes_per_s\": %.3f}%s\n",
                   Escaped(e.name).c_str(),
                   static_cast<long long>(e.iters), e.ns_per_op,
                   e.bytes_per_s, i + 1 < entries_.size() ? "," : "");
    }
    const std::string metrics =
        obs::ToJson(obs::Registry::Default().Snapshot());
    std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
    std::fclose(f);
    return true;
  }

  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::string name;
    std::int64_t iters;
    double ns_per_op;
    double bytes_per_s;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<Entry> entries_;
};

// Fills a blob database with `records` random fixed-size records at random
// distinct indices (dummy contents, as in the paper's microbenchmarks).
inline pir::BlobDatabase BuildShard(int domain_bits, std::size_t record_size,
                                    std::size_t records,
                                    std::uint64_t seed = 1) {
  pir::BlobDatabase db(domain_bits, record_size);
  Rng rng(seed);
  Bytes record(record_size);
  std::uint64_t inserted = 0;
  while (inserted < records) {
    const std::uint64_t index = rng.UniformInt(db.domain_size());
    if (db.Contains(index)) continue;
    rng.Fill(record);
    LW_CHECK(db.Insert(index, record).ok());
    ++inserted;
  }
  return db;
}

// One private-GET worth of server work, timed in parts. A non-null `pool`
// runs both components through the parallel paths the server uses.
struct RequestCost {
  double dpf_ms = 0;
  double scan_ms = 0;
  double total_ms() const { return dpf_ms + scan_ms; }
};

inline RequestCost MeasureOneRequest(const pir::BlobDatabase& db,
                                     int domain_bits, Rng& rng,
                                     ThreadPool* pool = nullptr) {
  const std::uint64_t target = rng.UniformInt(db.domain_size());
  const pir::QueryKeys q = pir::MakeIndexQuery(target, domain_bits);

  RequestCost cost;
  Stopwatch dpf_timer;
  const dpf::BitVector bits = dpf::EvalFullParallel(q.key0, pool);
  cost.dpf_ms = dpf_timer.ElapsedMillis();

  Bytes answer(db.record_size());
  Stopwatch scan_timer;
  db.Answer(bits, answer, pool);
  cost.scan_ms = scan_timer.ElapsedMillis();
  return cost;
}

// Averages several measured requests.
inline RequestCost MeasureRequests(const pir::BlobDatabase& db,
                                   int domain_bits, int iterations,
                                   std::uint64_t seed = 42,
                                   ThreadPool* pool = nullptr) {
  Rng rng(seed);
  RequestCost total;
  for (int i = 0; i < iterations; ++i) {
    const RequestCost c = MeasureOneRequest(db, domain_bits, rng, pool);
    total.dpf_ms += c.dpf_ms;
    total.scan_ms += c.scan_ms;
  }
  total.dpf_ms /= iterations;
  total.scan_ms /= iterations;
  return total;
}

inline void PrintRule() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

}  // namespace lw::bench
