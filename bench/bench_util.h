// Shared helpers for the experiment benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "dpf/dpf.h"
#include "pir/blob_db.h"
#include "pir/two_server.h"
#include "util/rand.h"
#include "util/timer.h"

namespace lw::bench {

// Fills a blob database with `records` random fixed-size records at random
// distinct indices (dummy contents, as in the paper's microbenchmarks).
inline pir::BlobDatabase BuildShard(int domain_bits, std::size_t record_size,
                                    std::size_t records,
                                    std::uint64_t seed = 1) {
  pir::BlobDatabase db(domain_bits, record_size);
  Rng rng(seed);
  Bytes record(record_size);
  std::uint64_t inserted = 0;
  while (inserted < records) {
    const std::uint64_t index = rng.UniformInt(db.domain_size());
    if (db.Contains(index)) continue;
    rng.Fill(record);
    LW_CHECK(db.Insert(index, record).ok());
    ++inserted;
  }
  return db;
}

// One private-GET worth of server work, timed in parts.
struct RequestCost {
  double dpf_ms = 0;
  double scan_ms = 0;
  double total_ms() const { return dpf_ms + scan_ms; }
};

inline RequestCost MeasureOneRequest(const pir::BlobDatabase& db,
                                     int domain_bits, Rng& rng) {
  const std::uint64_t target = rng.UniformInt(db.domain_size());
  const pir::QueryKeys q = pir::MakeIndexQuery(target, domain_bits);

  RequestCost cost;
  Stopwatch dpf_timer;
  const dpf::BitVector bits = dpf::EvalFull(q.key0);
  cost.dpf_ms = dpf_timer.ElapsedMillis();

  Bytes answer(db.record_size());
  Stopwatch scan_timer;
  db.Answer(bits, answer);
  cost.scan_ms = scan_timer.ElapsedMillis();
  return cost;
}

// Averages several measured requests.
inline RequestCost MeasureRequests(const pir::BlobDatabase& db,
                                   int domain_bits, int iterations,
                                   std::uint64_t seed = 42) {
  Rng rng(seed);
  RequestCost total;
  for (int i = 0; i < iterations; ++i) {
    const RequestCost c = MeasureOneRequest(db, domain_bits, rng);
    total.dpf_ms += c.dpf_ms;
    total.scan_ms += c.scan_ms;
  }
  total.dpf_ms /= iterations;
  total.scan_ms /= iterations;
  return total;
}

inline void PrintRule() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

}  // namespace lw::bench
