// E4/E5 — Table 2: estimated costs of running ZLTP on C4 and Wikipedia.
//
// Paper method (§5.2): measure one 1 GiB shard on a c5.large, then model the
// deployment as ceil(dataset / 1 GiB) shards, each paying the measured
// per-request wall time, doubled for the two-server setting.
//
//   Dataset    size    #pages  avg page  vCPU-sec  cost     comm
//   C4         305 GiB 360M    0.9 KiB   204       $0.002   15.9 KiB
//   Wikipedia  21 GiB  60M     0.4 KiB   10        $0.0001  14.9 KiB
//
// We print two versions: (a) the paper's own shard measurement fed through
// our cost model (validating the model reproduces their cells), and (b) our
// shard measurement on this machine (the honest reproduction).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "costmodel/costmodel.h"
#include "workload/workload.h"

namespace lw::bench {
namespace {

constexpr std::size_t kRecordSize = 4096;
constexpr int kDomainBits = 22;

BenchFlags g_flags;
JsonRecorder g_json;

cost::ShardMeasurement MeasureOurShard(double shard_gib) {
  const std::size_t records = static_cast<std::size_t>(
      shard_gib * (1ull << 30) / kRecordSize);
  const pir::BlobDatabase db = BuildShard(kDomainBits, kRecordSize, records);
  const std::unique_ptr<ThreadPool> pool = MakeBenchPool(g_flags);
  const int iters = g_flags.smoke ? 1 : 3;
  const RequestCost c =
      MeasureRequests(db, kDomainBits, iters, 42, pool.get());
  g_json.Add("table2/shard_request/threads=" + std::to_string(g_flags.threads),
             iters, c.total_ms() * 1e6,
             static_cast<double>(db.stored_bytes()) / (c.scan_ms / 1e3));
  cost::ShardMeasurement m;
  m.dpf_ms = c.dpf_ms;
  m.scan_ms = c.scan_ms;
  m.shard_gib = shard_gib;
  m.domain_bits = kDomainBits;
  return m;
}

void BM_ShardRequest(benchmark::State& state) {
  // One full request on a 256 MiB shard (Table 2's measured primitive,
  // scaled for bench-loop friendliness).
  const std::size_t records = (256ull << 20) / kRecordSize;
  const pir::BlobDatabase db = BuildShard(kDomainBits, kRecordSize, records);
  Rng rng(3);
  for (auto _ : state) {
    const RequestCost c = MeasureOneRequest(db, kDomainBits, rng);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ShardRequest)->Unit(benchmark::kMillisecond)->Iterations(3);

void PrintRow(const cost::ScaleEstimate& e) {
  std::printf("%-11s %8.0f %7.0fM %9.1f %10.0f %10.4f %9.1f\n",
              e.dataset.name.c_str(), e.dataset.total_gib,
              e.dataset.pages_millions, e.dataset.avg_page_kib,
              e.vcpu_seconds_system, e.usd_per_request_system,
              e.total_comm_kib);
}

void PrintReproductionTable() {
  const cost::InstanceSpec instance;

  std::printf("\n=== E4/E5: Table 2 — reproduction ===\n");
  std::printf("%-11s %8s %8s %9s %10s %10s %9s\n", "dataset", "GiB",
              "pages", "avg KiB", "vCPU-sec", "$/request", "comm KiB");
  PrintRule();

  std::printf("paper-reported cells:\n");
  std::printf("%-11s %8.0f %7.0fM %9.1f %10.0f %10.4f %9.1f\n", "C4", 305.0,
              360.0, 0.9, 204.0, 0.002, 15.9);
  std::printf("%-11s %8.0f %7.0fM %9.1f %10.0f %10.4f %9.1f\n", "Wikipedia",
              21.0, 60.0, 0.4, 10.0, 0.0001, 14.9);
  PrintRule();

  // (a) Model validation: the paper's shard numbers through our estimator.
  cost::ShardMeasurement paper_shard;
  paper_shard.dpf_ms = 64;
  paper_shard.scan_ms = 103;
  paper_shard.shard_gib = 1.0;
  paper_shard.domain_bits = 22;
  std::printf("our model fed the paper's shard measurement "
              "(167 ms/req/GiB on c5.large):\n");
  PrintRow(cost::EstimateScale(cost::C4Dataset(), paper_shard, instance,
                               kRecordSize));
  PrintRow(cost::EstimateScale(cost::WikipediaDataset(), paper_shard,
                               instance, kRecordSize));
  PrintRule();

  // (b) Our measured shard on this host (1 GiB, the paper's configuration;
  // costs still priced at c5.large rates for comparability). The smoke leg
  // measures a 64 MiB shard — the model normalizes per GiB.
  const double shard_gib = g_flags.smoke ? 1.0 / 16.0 : 1.0;
  std::printf("our model fed THIS HOST's measured %.3f GiB shard "
              "(threads=%d):\n",
              shard_gib, g_flags.threads);
  const cost::ShardMeasurement ours = MeasureOurShard(shard_gib);
  std::printf("  (measured: %.1f ms dpf + %.1f ms scan per request/GiB)\n",
              ours.dpf_ms, ours.scan_ms);
  const auto c4 =
      cost::EstimateScale(cost::C4Dataset(), ours, instance, kRecordSize);
  const auto wiki = cost::EstimateScale(cost::WikipediaDataset(), ours,
                                        instance, kRecordSize);
  PrintRow(c4);
  PrintRow(wiki);
  PrintRule();
  std::printf("shape checks:\n");
  std::printf("  C4/Wikipedia vCPU ratio: %.1f (paper ~20)\n",
              c4.vcpu_seconds_system / wiki.vcpu_seconds_system);
  std::printf("  per-request cost < $0.01: %s (\"less than one cent per "
              "request\")\n\n",
              c4.usd_per_request_system < 0.01 ? "yes" : "NO");

  // The synthetic corpora used to stand in for the datasets (substitution
  // documented in DESIGN.md): confirm their statistics.
  const workload::SyntheticCorpus c4_corpus(workload::C4Like(50000));
  const workload::SyntheticCorpus wiki_corpus(
      workload::WikipediaLike(50000));
  std::printf("synthetic corpora stats (target / generated mean page):\n");
  std::printf("  c4-like:        0.90 KiB / %.2f KiB\n",
              c4_corpus.SampleMeanPayloadBytes(2000) / 1024.0);
  std::printf("  wikipedia-like: 0.40 KiB / %.2f KiB\n\n",
              wiki_corpus.SampleMeanPayloadBytes(2000) / 1024.0);
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  lw::bench::g_flags = lw::bench::ParseBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  if (!lw::bench::g_flags.json_path.empty()) {
    if (!lw::bench::g_json.WriteTo(lw::bench::g_flags.json_path)) return 1;
    std::printf("wrote %s\n", lw::bench::g_flags.json_path.c_str());
  }
  return 0;
}
