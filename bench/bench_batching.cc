// E2 — §5.1 "Batching requests to increase throughput".
//
// Paper (1 GiB shard): batch of 16 → 2.6 s latency and 6 requests/s;
// batch of 1 → 0.51 s latency and 2 requests/s. Batching amortizes the
// data scan's memory traffic across co-batched queries, so throughput rises
// while latency (time to the whole batch's answers) rises too.
//
// We sweep batch sizes on a scaled shard and check the shape: monotone
// throughput gain and monotone latency growth, with a large (>2×)
// throughput win by batch 16.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"

namespace lw::bench {
namespace {

constexpr std::size_t kRecordSize = 4096;
constexpr int kDomainBits = 22;
// 256 MiB shard keeps the sweep quick; the effect is per-byte-of-shard.
constexpr std::size_t kRecords = (256ull << 20) / kRecordSize;

const pir::BlobDatabase& Shard() {
  static const pir::BlobDatabase* db =
      new pir::BlobDatabase(BuildShard(kDomainBits, kRecordSize, kRecords));
  return *db;
}

std::vector<dpf::BitVector> MakeBatch(std::size_t batch, Rng& rng) {
  std::vector<dpf::BitVector> bits;
  bits.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const pir::QueryKeys q = pir::MakeIndexQuery(
        rng.UniformInt(std::uint64_t{1} << kDomainBits), kDomainBits);
    bits.push_back(dpf::EvalFull(q.key0));
  }
  return bits;
}

void BM_BatchedScan(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const pir::BlobDatabase& db = Shard();
  Rng rng(7);
  const std::vector<dpf::BitVector> bits = MakeBatch(batch, rng);
  std::vector<Bytes> answers;
  for (auto _ : state) {
    db.AnswerBatch(bits, answers);
    benchmark::DoNotOptimize(answers.data());
  }
  const double seconds_per_batch =
      state.iterations() == 0 ? 0 : 1;  // silence unused warnings
  (void)seconds_per_batch;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_BatchedScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void PrintReproductionTable() {
  std::printf("\n=== E2: §5.1 batching — reproduction ===\n");
  std::printf("shard: %zu records x 4 KiB = %.0f MiB, domain 2^22\n",
              kRecords, kRecords * kRecordSize / (1024.0 * 1024.0));
  std::printf(
      "(latency here is the scan component per batch; the paper's 0.51 s /\n"
      " 2.6 s figures include DPF evaluation and queueing on a full 1 GiB\n"
      " shard — compare shapes, not milliseconds)\n");
  PrintRule();
  std::printf("%8s %14s %16s %18s\n", "batch", "latency(ms)",
              "ms/request", "throughput(req/s)");
  PrintRule();

  const pir::BlobDatabase& db = Shard();
  Rng rng(99);
  double t1 = 0, t16 = 0;
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto bits = MakeBatch(batch, rng);
    std::vector<Bytes> answers;
    // Warm once, then time a few rounds.
    db.AnswerBatch(bits, answers);
    Stopwatch timer;
    constexpr int kRounds = 3;
    for (int r = 0; r < kRounds; ++r) db.AnswerBatch(bits, answers);
    const double latency_ms = timer.ElapsedMillis() / kRounds;
    const double per_request = latency_ms / static_cast<double>(batch);
    const double throughput = 1000.0 / per_request;
    if (batch == 1) t1 = throughput;
    if (batch == 16) t16 = throughput;
    std::printf("%8zu %14.1f %16.2f %18.1f\n", batch, latency_ms,
                per_request, throughput);
  }
  PrintRule();
  std::printf("paper:   batch 1 -> 2 req/s @ 0.51 s;  batch 16 -> 6 req/s "
              "@ 2.6 s  (3.0x throughput)\n");
  std::printf("ours:    batch 16 / batch 1 throughput = %.2fx; latency "
              "grows with batch: %s\n\n",
              t16 / t1, t16 > 0 ? "yes" : "-");
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
