// E2 — §5.1 "Batching requests to increase throughput".
//
// Paper (1 GiB shard): batch of 16 → 2.6 s latency and 6 requests/s;
// batch of 1 → 0.51 s latency and 2 requests/s. Batching amortizes the
// data scan's memory traffic across co-batched queries, so throughput rises
// while latency (time to the whole batch's answers) rises too.
//
// We sweep batch sizes on a scaled shard and check the shape: monotone
// throughput gain and monotone latency growth, with a large (>2×)
// throughput win by batch 16. The scan itself is the fused single-pass
// AnswerBatch; --threads=N additionally shards rows across a pool.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"

namespace lw::bench {
namespace {

constexpr std::size_t kRecordSize = 4096;
constexpr int kDomainBits = 22;

BenchFlags g_flags;
JsonRecorder g_json;

std::size_t ShardRecords() {
  // 256 MiB keeps the sweep quick (the effect is per-byte-of-shard); the
  // smoke leg drops to 32 MiB.
  const std::size_t bytes = g_flags.smoke ? (32ull << 20) : (256ull << 20);
  return bytes / kRecordSize;
}

const pir::BlobDatabase& Shard() {
  // Leaky singleton: the shard is hundreds of MiB and shared across
  // benchmark registrations; freeing it during static destruction buys
  // nothing and slows exit. lwlint: allow(naked-new)
  static const pir::BlobDatabase* db = new pir::BlobDatabase(
      BuildShard(kDomainBits, kRecordSize, ShardRecords()));
  return *db;
}

ThreadPool* BenchPool() {
  static std::unique_ptr<ThreadPool> pool = MakeBenchPool(g_flags);
  return pool.get();
}

std::vector<dpf::BitVector> MakeBatch(std::size_t batch, Rng& rng) {
  std::vector<dpf::BitVector> bits;
  bits.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const pir::QueryKeys q = pir::MakeIndexQuery(
        rng.UniformInt(std::uint64_t{1} << kDomainBits), kDomainBits);
    bits.push_back(dpf::EvalFull(q.key0));
  }
  return bits;
}

void BM_BatchedScan(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const pir::BlobDatabase& db = Shard();
  Rng rng(7);
  const std::vector<dpf::BitVector> bits = MakeBatch(batch, rng);
  std::vector<Bytes> answers;
  for (auto _ : state) {
    db.AnswerBatch(bits, answers, BenchPool());
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_BatchedScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void PrintReproductionTable() {
  std::printf("\n=== E2: §5.1 batching — reproduction ===\n");
  std::printf("shard: %zu records x 4 KiB = %.0f MiB, domain 2^22, "
              "threads=%d\n",
              ShardRecords(),
              ShardRecords() * kRecordSize / (1024.0 * 1024.0),
              g_flags.threads);
  std::printf(
      "(latency here is the scan component per batch; the paper's 0.51 s /\n"
      " 2.6 s figures include DPF evaluation and queueing on a full 1 GiB\n"
      " shard — compare shapes, not milliseconds)\n");
  PrintRule();
  std::printf("%8s %14s %16s %18s\n", "batch", "latency(ms)",
              "ms/request", "throughput(req/s)");
  PrintRule();

  const pir::BlobDatabase& db = Shard();
  Rng rng(99);
  double t1 = 0, t16 = 0;
  const int rounds = g_flags.smoke ? 1 : 3;
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto bits = MakeBatch(batch, rng);
    std::vector<Bytes> answers;
    // Warm once, then time a few rounds.
    db.AnswerBatch(bits, answers, BenchPool());
    Stopwatch timer;
    for (int r = 0; r < rounds; ++r) db.AnswerBatch(bits, answers, BenchPool());
    const double latency_ms = timer.ElapsedMillis() / rounds;
    const double per_request = latency_ms / static_cast<double>(batch);
    const double throughput = 1000.0 / per_request;
    if (batch == 1) t1 = throughput;
    if (batch == 16) t16 = throughput;
    g_json.Add("batching/batch=" + std::to_string(batch) +
                   "/threads=" + std::to_string(g_flags.threads),
               rounds, latency_ms * 1e6,
               static_cast<double>(db.stored_bytes()) / (latency_ms / 1e3));
    std::printf("%8zu %14.1f %16.2f %18.1f\n", batch, latency_ms,
                per_request, throughput);
  }
  PrintRule();
  std::printf("paper:   batch 1 -> 2 req/s @ 0.51 s;  batch 16 -> 6 req/s "
              "@ 2.6 s  (3.0x throughput)\n");
  std::printf("ours:    batch 16 / batch 1 throughput = %.2fx; latency "
              "grows with batch: %s\n\n",
              t16 / t1, t16 > 0 ? "yes" : "-");
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  lw::bench::g_flags = lw::bench::ParseBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  if (!lw::bench::g_flags.json_path.empty()) {
    if (!lw::bench::g_json.WriteTo(lw::bench::g_flags.json_path)) return 1;
    std::printf("wrote %s\n", lw::bench::g_flags.json_path.c_str());
  }
  return 0;
}
