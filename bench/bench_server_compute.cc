// E1 — §5.1 "Server computation" microbenchmark.
//
// Paper (on an AWS c5.large, 1 GiB shard, DPF output domain 2^22, 4 KiB
// dummy records): 167 ms of computation per request, split into ~64 ms of
// DPF evaluation and ~103 ms of data scan.
//
// This bench measures the same two components on this machine at the
// paper's exact configuration (and smaller ones for the curve), then prints
// the reproduction table. Absolute times differ with hardware; the claims
// to check are (a) scan time scales with stored bytes, (b) DPF evaluation
// scales with 2^d, and (c) the two are the same order of magnitude at the
// paper's parameters, with the scan dominating.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "crypto/aes128.h"

namespace lw::bench {
namespace {

constexpr std::size_t kRecordSize = 4096;

// DPF full-domain evaluation cost vs domain size (the "64 ms" component).
void BM_DpfFullEval(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const dpf::KeyPair pair = dpf::Generate(123, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpf::EvalFull(pair.key0));
  }
  state.counters["leaves"] = static_cast<double>(std::uint64_t{1} << d);
}
BENCHMARK(BM_DpfFullEval)->Arg(16)->Arg(18)->Arg(20)->Arg(22)
    ->Unit(benchmark::kMillisecond);

// Data-scan cost vs stored bytes (the "103 ms" component).
void BM_DataScan(benchmark::State& state) {
  const std::size_t records = static_cast<std::size_t>(state.range(0));
  const int d = 22;
  const pir::BlobDatabase db = BuildShard(d, kRecordSize, records);
  // Scan with a fixed precomputed selection vector: isolates the scan.
  const pir::QueryKeys q = pir::MakeIndexQuery(1, d);
  const dpf::BitVector bits = dpf::EvalFull(q.key0);
  Bytes answer(kRecordSize);
  for (auto _ : state) {
    db.Answer(bits, answer);
    benchmark::DoNotOptimize(answer.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(db.stored_bytes()));
  state.counters["MiB"] =
      static_cast<double>(db.stored_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_DataScan)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

// The raw XOR kernel (the paper's "vector AVX instructions to accelerate
// the data scan").
void BM_XorKernel(benchmark::State& state) {
  Bytes acc(kRecordSize, 0), src(kRecordSize, 0x5a);
  for (auto _ : state) {
    pir::XorBytes(acc.data(), src.data(), kRecordSize);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * kRecordSize);
}
BENCHMARK(BM_XorKernel);

void PrintReproductionTable() {
  std::printf("\n=== E1: §5.1 server computation — reproduction ===\n");
  std::printf("AES-NI fast path: %s\n",
              crypto::Aes128::HasHardwareSupport() ? "yes" : "no");

  // Paper configuration: 1 GiB of 4 KiB dummy records, domain 2^22.
  const int d = 22;
  const std::size_t records = (1ull << 30) / kRecordSize;  // 1 GiB
  std::printf("building 1 GiB shard (%zu records of 4 KiB, domain 2^22)...\n",
              records);
  const pir::BlobDatabase db = BuildShard(d, kRecordSize, records);
  const RequestCost cost = MeasureRequests(db, d, 5);

  PrintRule();
  std::printf("%-34s %10s %10s %10s\n", "configuration", "dpf(ms)",
              "scan(ms)", "total(ms)");
  PrintRule();
  std::printf("%-34s %10.1f %10.1f %10.1f\n",
              "paper: c5.large, 1GiB, d=22", 64.0, 103.0, 167.0);
  std::printf("%-34s %10.1f %10.1f %10.1f\n", "ours:  this host, 1GiB, d=22",
              cost.dpf_ms, cost.scan_ms, cost.total_ms());
  PrintRule();
  std::printf("shape checks:\n");
  std::printf("  scan dominates DPF eval: %s (scan/dpf = %.2f; paper 1.61)\n",
              cost.scan_ms > cost.dpf_ms ? "yes" : "NO",
              cost.scan_ms / cost.dpf_ms);
  std::printf("  scan throughput: %.1f GiB/s\n",
              1.0 / (cost.scan_ms / 1000.0));
  std::printf("  per-request compute at two servers: %.1f ms (paper 334)\n\n",
              2 * cost.total_ms());
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  return 0;
}
