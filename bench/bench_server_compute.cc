// E1 — §5.1 "Server computation" microbenchmark.
//
// Paper (on an AWS c5.large, 1 GiB shard, DPF output domain 2^22, 4 KiB
// dummy records): 167 ms of computation per request, split into ~64 ms of
// DPF evaluation and ~103 ms of data scan.
//
// This bench measures the same two components on this machine at the
// paper's exact configuration (and smaller ones for the curve), then prints
// the reproduction table. Absolute times differ with hardware; the claims
// to check are (a) scan time scales with stored bytes, (b) DPF evaluation
// scales with 2^d, and (c) the two are the same order of magnitude at the
// paper's parameters, with the scan dominating.
//
// Flags (stripped before google-benchmark sees argv):
//   --threads=N  run the reproduction table through an N-thread pool and
//                print a thread-scaling curve (1 = serial, 0 = all cores)
//   --smoke      64 MiB shard / 1 iteration — CI smoke leg
//   --json=PATH  archive measured rows as JSON
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "crypto/aes128.h"

namespace lw::bench {
namespace {

constexpr std::size_t kRecordSize = 4096;

BenchFlags g_flags;
JsonRecorder g_json;

// DPF full-domain evaluation cost vs domain size (the "64 ms" component).
void BM_DpfFullEval(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const dpf::KeyPair pair = dpf::Generate(123, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpf::EvalFull(pair.key0));
  }
  state.counters["leaves"] = static_cast<double>(std::uint64_t{1} << d);
}
BENCHMARK(BM_DpfFullEval)->Arg(16)->Arg(18)->Arg(20)->Arg(22)
    ->Unit(benchmark::kMillisecond);

// The same evaluation split across a pool: the top of the tree is expanded
// once, then blocks of sub-trees expand on the workers (args: domain bits,
// pool threads).
void BM_DpfFullEvalParallel(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const dpf::KeyPair pair = dpf::Generate(123, d);
  ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpf::EvalFullParallel(pair.key0, &pool));
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["leaves"] = static_cast<double>(std::uint64_t{1} << d);
}
BENCHMARK(BM_DpfFullEvalParallel)
    ->Args({18, 2})->Args({18, 4})->Args({22, 2})->Args({22, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Data-scan cost vs stored bytes (the "103 ms" component).
void BM_DataScan(benchmark::State& state) {
  const std::size_t records = static_cast<std::size_t>(state.range(0));
  const int d = 22;
  const pir::BlobDatabase db = BuildShard(d, kRecordSize, records);
  // Scan with a fixed precomputed selection vector: isolates the scan.
  const pir::QueryKeys q = pir::MakeIndexQuery(1, d);
  const dpf::BitVector bits = dpf::EvalFull(q.key0);
  Bytes answer(kRecordSize);
  for (auto _ : state) {
    db.Answer(bits, answer);
    benchmark::DoNotOptimize(answer.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(db.stored_bytes()));
  state.counters["MiB"] =
      static_cast<double>(db.stored_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_DataScan)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

// Sharded scan: rows split across workers with private accumulators, then
// a tree reduction (args: records, pool threads).
void BM_DataScanParallel(benchmark::State& state) {
  const std::size_t records = static_cast<std::size_t>(state.range(0));
  const int d = 22;
  const int threads = static_cast<int>(state.range(1));
  const pir::BlobDatabase db = BuildShard(d, kRecordSize, records);
  const pir::QueryKeys q = pir::MakeIndexQuery(1, d);
  const dpf::BitVector bits = dpf::EvalFull(q.key0);
  ThreadPool pool(threads);
  Bytes answer(kRecordSize);
  for (auto _ : state) {
    db.Answer(bits, answer, &pool);
    benchmark::DoNotOptimize(answer.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(db.stored_bytes()));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_DataScanParallel)
    ->Args({1 << 14, 2})->Args({1 << 14, 4})
    ->Args({1 << 16, 2})->Args({1 << 16, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The raw XOR kernel (the paper's "vector AVX instructions to accelerate
// the data scan").
void BM_XorKernel(benchmark::State& state) {
  Bytes acc(kRecordSize, 0), src(kRecordSize, 0x5a);
  for (auto _ : state) {
    pir::XorBytes(acc.data(), src.data(), kRecordSize);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * kRecordSize);
}
BENCHMARK(BM_XorKernel);

void RecordRequestCost(const std::string& name, const RequestCost& cost,
                       int iters, std::size_t scanned_bytes) {
  g_json.Add(name + "/dpf", iters, cost.dpf_ms * 1e6, 0.0);
  g_json.Add(name + "/scan", iters, cost.scan_ms * 1e6,
             cost.scan_ms > 0
                 ? static_cast<double>(scanned_bytes) / (cost.scan_ms / 1e3)
                 : 0.0);
}

void PrintReproductionTable() {
  std::printf("\n=== E1: §5.1 server computation — reproduction ===\n");
  std::printf("AES-NI fast path: %s\n",
              crypto::Aes128::HasHardwareSupport() ? "yes" : "no");

  // Paper configuration: 1 GiB of 4 KiB dummy records, domain 2^22. The
  // smoke leg shrinks to 64 MiB so CI finishes in seconds.
  const int d = 22;
  const std::size_t shard_bytes =
      g_flags.smoke ? (64ull << 20) : (1ull << 30);
  const std::size_t records = shard_bytes / kRecordSize;
  const int iters = g_flags.smoke ? 1 : 5;
  std::printf("building %.0f MiB shard (%zu records of 4 KiB, domain 2^22",
              shard_bytes / (1024.0 * 1024.0), records);
  std::printf(", threads=%d)...\n", g_flags.threads);
  const pir::BlobDatabase db = BuildShard(d, kRecordSize, records);
  const std::unique_ptr<ThreadPool> pool = MakeBenchPool(g_flags);
  const RequestCost cost = MeasureRequests(db, d, iters, 42, pool.get());
  RecordRequestCost("server_compute/d22/threads=" +
                        std::to_string(g_flags.threads),
                    cost, iters, db.stored_bytes());

  PrintRule();
  std::printf("%-34s %10s %10s %10s\n", "configuration", "dpf(ms)",
              "scan(ms)", "total(ms)");
  PrintRule();
  std::printf("%-34s %10.1f %10.1f %10.1f\n",
              "paper: c5.large, 1GiB, d=22", 64.0, 103.0, 167.0);
  const std::string ours_label =
      "ours:  this host, t=" + std::to_string(g_flags.threads);
  std::printf("%-34s %10.1f %10.1f %10.1f\n", ours_label.c_str(),
              cost.dpf_ms, cost.scan_ms, cost.total_ms());
  PrintRule();
  std::printf("shape checks:\n");
  std::printf("  scan dominates DPF eval: %s (scan/dpf = %.2f; paper 1.61)\n",
              cost.scan_ms > cost.dpf_ms ? "yes" : "NO",
              cost.scan_ms / cost.dpf_ms);
  std::printf("  scan throughput: %.1f GiB/s\n",
              (static_cast<double>(shard_bytes) / (1024.0 * 1024.0 * 1024.0)) /
                  (cost.scan_ms / 1000.0));
  std::printf("  per-request compute at two servers: %.1f ms (paper 334)\n\n",
              2 * cost.total_ms());

  // Thread-scaling curve on the same shard: per-request time vs pool size.
  // Speedup is only expected on multicore hosts; on 1 vCPU the curve is
  // flat (the pool degrades to inline execution plus scheduling noise).
  std::printf("thread scaling (same shard, %d measured request%s/point):\n",
              iters, iters == 1 ? "" : "s");
  std::printf("%8s %10s %10s %10s %10s\n", "threads", "dpf(ms)", "scan(ms)",
              "total(ms)", "speedup");
  double serial_total = 0;
  std::vector<int> sweep = {1, 2, 4};
  if (g_flags.threads > 4) sweep.push_back(g_flags.threads);
  for (const int t : sweep) {
    ThreadPool sweep_pool(t);
    const RequestCost c =
        MeasureRequests(db, d, iters, 42, t == 1 ? nullptr : &sweep_pool);
    if (t == 1) serial_total = c.total_ms();
    RecordRequestCost("server_compute/scaling/threads=" + std::to_string(t),
                      c, iters, db.stored_bytes());
    std::printf("%8d %10.1f %10.1f %10.1f %9.2fx\n", t, c.dpf_ms, c.scan_ms,
                c.total_ms(),
                c.total_ms() > 0 ? serial_total / c.total_ms() : 0.0);
  }
  std::printf("(hardware_concurrency() = %d on this host)\n\n",
              ThreadPool::HardwareThreads());
}

}  // namespace
}  // namespace lw::bench

int main(int argc, char** argv) {
  lw::bench::g_flags = lw::bench::ParseBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lw::bench::PrintReproductionTable();
  if (!lw::bench::g_flags.json_path.empty()) {
    if (!lw::bench::g_json.WriteTo(lw::bench::g_flags.json_path)) return 1;
    std::printf("wrote %s\n", lw::bench::g_flags.json_path.c_str());
  }
  return 0;
}
